"""Tests for the execution-backend registry and the process-pool backend."""

from __future__ import annotations

import functools

import pytest

from repro.experiments.runner import run_trials
from repro.parallel.backend import (
    ExecutionBackend,
    ProcessPoolBackend,
    SerialBackend,
    ThreadPoolBackend,
    available_backends,
    get_backend,
    register_backend,
    unregister_backend,
)


def _square(x: int) -> int:
    # Module-level so the process pool can pickle it.
    return x * x


def _rng_draw(rng) -> float:
    return float(rng.random())


class TestRegistry:
    def test_builtin_backends(self):
        assert set(available_backends()) == {"serial", "threads", "processes"}

    def test_get_backend_by_name(self):
        assert isinstance(get_backend("serial"), SerialBackend)
        assert isinstance(get_backend("threads"), ThreadPoolBackend)
        assert isinstance(get_backend("processes"), ProcessPoolBackend)

    def test_get_backend_passes_instances_through(self):
        instance = SerialBackend()
        assert get_backend(instance) is instance

    def test_max_workers_forwarded_to_pools(self):
        with get_backend("threads", max_workers=2) as backend:
            assert backend.max_workers == 2
        with get_backend("processes", max_workers=2) as backend:
            assert backend.max_workers == 2

    def test_unknown_backend_lists_available(self):
        with pytest.raises(ValueError, match="unknown backend 'gpu'.*'processes'"):
            get_backend("gpu")

    def test_register_backend(self):
        class LoudSerial(SerialBackend):
            name = "loud"

        register_backend("loud", LoudSerial)
        try:
            assert "loud" in available_backends()
            assert isinstance(get_backend("loud"), LoudSerial)
            with pytest.raises(ValueError, match="already registered"):
                register_backend("loud", SerialBackend)
        finally:
            unregister_backend("loud")
        assert "loud" not in available_backends()

    def test_max_workers_forwarded_to_registered_pool_backends(self):
        # Third-party backends whose factory takes max_workers get the
        # caller's worker count, same as the built-in pools.
        class CustomPool(ThreadPoolBackend):
            name = "custom-pool"

        register_backend("custom-pool", CustomPool)
        try:
            with get_backend("custom-pool", max_workers=3) as backend:
                assert backend.max_workers == 3
        finally:
            unregister_backend("custom-pool")

    def test_register_rejects_bad_arguments(self):
        with pytest.raises(TypeError):
            register_backend("", SerialBackend)
        with pytest.raises(TypeError):
            register_backend("thing", "not-callable")


class TestBackendsAgree:
    @pytest.mark.parametrize("name", sorted(available_backends()))
    def test_map_preserves_order(self, name):
        items = list(range(12))
        with get_backend(name, max_workers=2) as backend:
            assert backend.map(_square, items) == [x * x for x in items]

    def test_close_is_idempotent(self):
        for name in available_backends():
            backend = get_backend(name, max_workers=2)
            backend.map(_square, [1, 2])
            backend.close()
            backend.close()

    def test_context_manager_closes(self):
        with ProcessPoolBackend(max_workers=1) as backend:
            assert backend.map(_square, [3]) == [9]
        assert backend._executor is None


class TestRunTrialsBackendNames:
    @pytest.mark.parametrize("name", sorted(available_backends()))
    def test_run_trials_accepts_names(self, name):
        values = run_trials(_rng_draw, 6, seed=42, backend=name, max_workers=2)
        assert values == run_trials(_rng_draw, 6, seed=42)

    def test_run_trials_leaves_instances_open(self):
        backend = ThreadPoolBackend(max_workers=2)
        run_trials(_rng_draw, 3, seed=1, backend=backend)
        assert backend._executor is not None  # not closed by run_trials
        backend.close()


class TestProcessPool:
    def test_defaults_to_cpu_count(self):
        assert ProcessPoolBackend().max_workers >= 1

    def test_rejects_nonpositive_workers(self):
        with pytest.raises(ValueError):
            ProcessPoolBackend(max_workers=0)

    def test_partial_work_functions(self):
        with ProcessPoolBackend(max_workers=2) as backend:
            add = functools.partial(int.__add__, 10)
            assert backend.map(add, [1, 2, 3]) == [11, 12, 13]

    def test_is_execution_backend(self):
        assert issubclass(ProcessPoolBackend, ExecutionBackend)
