"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.hypergraph import Hypergraph, partitioned_hypergraph, random_hypergraph


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministic RNG for tests that need ad-hoc randomness."""
    return np.random.default_rng(12345)


@pytest.fixture
def tiny_graph() -> Hypergraph:
    """A 6-vertex, 4-edge, 3-uniform hypergraph with a known 2-core.

    Edges: {0,1,2}, {1,2,3}, {2,3,4}, {1,2,4}.  Vertex 5 is isolated and
    vertex 0 has degree 1, so peeling with k=2 removes edge 0 first; the rest
    form a 2-core on vertices {1,2,3,4}.
    """
    edges = [[0, 1, 2], [1, 2, 3], [2, 3, 4], [1, 2, 4]]
    return Hypergraph(6, edges)


@pytest.fixture
def path_like_graph() -> Hypergraph:
    """A 3-uniform 'path' that peels completely with k=2.

    Edges: {0,1,2}, {2,3,4}, {4,5,6}.  Every edge has an endpoint of degree 1
    at every stage, so the 2-core is empty.
    """
    edges = [[0, 1, 2], [2, 3, 4], [4, 5, 6]]
    return Hypergraph(7, edges)


@pytest.fixture
def small_below_threshold() -> Hypergraph:
    """A random G^4_{n,cn} well below the 2-core threshold (c=0.6)."""
    return random_hypergraph(4000, 0.6, 4, seed=101)


@pytest.fixture
def small_above_threshold() -> Hypergraph:
    """A random G^4_{n,cn} well above the 2-core threshold (c=0.9)."""
    return random_hypergraph(4000, 0.9, 4, seed=202)


@pytest.fixture
def small_partitioned() -> Hypergraph:
    """A partitioned (subtable-model) hypergraph below the threshold."""
    return partitioned_hypergraph(4000, 0.6, 4, seed=303)
