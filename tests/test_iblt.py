"""Tests for the IBLT table and its serial recovery."""

from __future__ import annotations

import numpy as np
import pytest

from repro.apps.sparse_recovery import random_distinct_keys
from repro.iblt import IBLT


class TestConstruction:
    def test_basic_fields(self):
        table = IBLT(300, 3)
        assert table.num_cells == 300
        assert table.r == 3
        assert table.load == 0.0
        assert table.is_empty()

    def test_subtable_divisibility(self):
        with pytest.raises(ValueError):
            IBLT(301, 3, layout="subtables")

    def test_flat_layout_any_size(self):
        IBLT(301, 3, layout="flat")

    def test_repr(self):
        assert "num_cells=300" in repr(IBLT(300, 3))


class TestInsertDelete:
    def test_insert_updates_load(self):
        table = IBLT(300, 3)
        table.insert(np.arange(1, 31, dtype=np.uint64))
        assert table.net_items == 30
        assert table.load == pytest.approx(0.1)

    def test_insert_then_delete_restores_empty(self):
        table = IBLT(300, 3)
        keys = np.arange(1, 101, dtype=np.uint64)
        table.insert(keys)
        table.delete(keys)
        assert table.is_empty()
        assert table.net_items == 0

    def test_partial_delete_leaves_difference(self):
        table = IBLT(300, 3, seed=1)
        table.insert(np.arange(1, 101, dtype=np.uint64))
        table.delete(np.arange(1, 51, dtype=np.uint64))
        result = table.decode()
        assert result.success
        assert sorted(map(int, result.recovered)) == list(range(51, 101))

    def test_zero_key_rejected(self):
        table = IBLT(300, 3)
        with pytest.raises(ValueError):
            table.insert([0])

    def test_empty_batch_noop(self):
        table = IBLT(300, 3)
        table.insert(np.empty(0, dtype=np.uint64))
        table.delete(np.empty(0, dtype=np.uint64))
        assert table.is_empty()

    def test_single_scalar_like_insert(self):
        table = IBLT(300, 3)
        table.insert([7])
        assert table.net_items == 1
        result = table.decode()
        assert result.success and result.recovered.tolist() == [7]

    def test_2d_keys_rejected(self):
        with pytest.raises(ValueError):
            IBLT(300, 3).insert(np.ones((2, 2), dtype=np.uint64))

    def test_counts_sum_consistent(self):
        table = IBLT(300, 3)
        table.insert(np.arange(1, 41, dtype=np.uint64))
        assert table.count.sum() == 40 * 3

    def test_copy_independent(self):
        table = IBLT(300, 3)
        table.insert([1, 2, 3])
        clone = table.copy()
        clone.insert([4])
        assert table.net_items == 3
        assert clone.net_items == 4


class TestPureCells:
    def test_pure_cells_detected(self):
        table = IBLT(30, 3, seed=2)
        table.insert([5])
        mask = table.pure_cell_mask()
        assert mask.sum() == 3  # a lone key occupies 3 pure cells

    def test_unsigned_mode_ignores_negative(self):
        table = IBLT(30, 3, seed=2)
        table.delete([5])
        assert table.pure_cell_mask(signed=True).sum() == 3
        assert table.pure_cell_mask(signed=False).sum() == 0

    def test_colliding_keys_not_pure(self):
        table = IBLT(30, 3, seed=2)
        table.insert([5, 9])
        mask = table.pure_cell_mask()
        # Cells holding both keys must not be flagged pure.
        shared = (table.count >= 2)
        assert not (mask & shared).any()


class TestGet:
    def test_get_absent_key_zero(self):
        table = IBLT(300, 3, seed=3)
        table.insert([10, 20, 30])
        assert table.get(999999) in (0, None)

    def test_get_present_key(self):
        table = IBLT(300, 3, seed=3)
        table.insert([10])
        assert table.get(10) == 1

    def test_get_deleted_key(self):
        table = IBLT(300, 3, seed=3)
        table.delete([10])
        assert table.get(10) == -1


class TestSerialDecode:
    def test_decode_small_set(self):
        table = IBLT(300, 3, seed=4)
        keys = np.arange(1, 151, dtype=np.uint64)
        table.insert(keys)
        result = table.decode()
        assert result.success
        assert sorted(map(int, result.recovered)) == list(range(1, 151))
        assert result.removed.size == 0

    def test_decode_below_threshold_load(self):
        table = IBLT(3000, 3, seed=5)
        keys = random_distinct_keys(2100, seed=5)  # load 0.70 < 0.818
        table.insert(keys)
        result = table.decode()
        assert result.success
        assert result.recovered.size == 2100

    def test_decode_overloaded_table_fails(self):
        table = IBLT(600, 3, seed=6)
        keys = random_distinct_keys(590, seed=6)  # load ~0.98 > threshold
        table.insert(keys)
        result = table.decode()
        assert not result.success
        assert result.recovered.size < 590

    def test_decode_preserves_table_by_default(self):
        table = IBLT(300, 3, seed=7)
        table.insert([1, 2, 3])
        table.decode()
        assert not table.is_empty()

    def test_decode_in_place_consumes_table(self):
        table = IBLT(300, 3, seed=7)
        table.insert([1, 2, 3])
        result = table.decode(in_place=True)
        assert result.success
        assert table.is_empty()

    def test_decode_signed_difference(self):
        table = IBLT(300, 3, seed=8)
        table.insert([1, 2, 3])
        table.delete([10, 11])
        result = table.decode()
        assert result.success
        assert sorted(map(int, result.recovered)) == [1, 2, 3]
        assert sorted(map(int, result.removed)) == [10, 11]

    def test_decode_empty_table(self):
        result = IBLT(300, 3).decode()
        assert result.success
        assert result.recovered.size == 0

    def test_decode_flat_layout(self):
        table = IBLT(400, 3, layout="flat", seed=9)
        keys = random_distinct_keys(200, seed=9)
        table.insert(keys)
        result = table.decode()
        assert result.success
        assert result.recovered.size == 200

    def test_cells_scanned_positive(self):
        table = IBLT(300, 3, seed=10)
        table.insert([1, 2, 3])
        assert table.decode().cells_scanned >= 300


class TestSubtract:
    def test_subtract_recovers_symmetric_difference(self):
        a = IBLT(600, 3, seed=11)
        b = IBLT(600, 3, seed=11)
        shared = np.arange(1, 1001, dtype=np.uint64)
        a.insert(shared)
        b.insert(shared)
        a.insert([2000, 2001])
        b.insert([3000])
        diff = a.subtract(b)
        result = diff.decode()
        assert result.success
        assert sorted(map(int, result.recovered)) == [2000, 2001]
        assert sorted(map(int, result.removed)) == [3000]

    def test_subtract_requires_same_geometry(self):
        a = IBLT(300, 3, seed=1)
        b = IBLT(600, 3, seed=1)
        with pytest.raises(ValueError):
            a.subtract(b)

    def test_subtract_requires_same_seed(self):
        a = IBLT(300, 3, seed=1)
        b = IBLT(300, 3, seed=2)
        with pytest.raises(ValueError):
            a.subtract(b)

    def test_subtract_self_is_empty(self):
        a = IBLT(300, 3, seed=1)
        a.insert(np.arange(1, 50, dtype=np.uint64))
        assert a.subtract(a.copy()).is_empty()
