"""Bit-for-bit parity of the kernel-layer engines with the pre-kernel code.

The fingerprints below were captured from the pre-refactor engine and
decoder implementations (the inline-NumPy code this repo shipped before the
``repro.kernels`` layer existed) on fixed seeded inputs.  Every engine ×
decoder must keep reproducing them exactly — round counts, subround counts,
per-round work, conflict depths and the full peel-round arrays — on every
registered kernel backend, which is what makes kernels swappable: Tables 1–6
cannot move when the backend does.

The digests are the first 16 hex chars of the SHA-256 of the raw array bytes
(int64/uint64 little-endian on all supported platforms), so any change to
any entry of any accounting array fails loudly.
"""

from __future__ import annotations

import hashlib

import numpy as np
import pytest

from repro.engine import peel
from repro.hypergraph import partitioned_hypergraph, random_hypergraph
from repro.iblt import IBLT
from repro.kernels import KernelUnavailableError, available_kernels, get_kernel


def _kernel_or_skip(name):
    """Resolve a declared backend, or skip naming the load failure.

    ``available_kernels()`` lists *declared* backends, including compiled
    tiers whose toolchain has not been probed yet.  On a machine where the
    toolchain is present but broken, the parity case must surface as an
    explicit skip carrying the backend's load error — never a silent pass
    (the backend would go untested) and never an unrelated hard error.
    """
    try:
        get_kernel(name)
    except KernelUnavailableError as exc:
        pytest.skip(f"kernel backend {name!r} unavailable: {exc}")
    return name

PEEL_CASES = [
    # (engine, update, n, c, r, k, seed)
    ("parallel", "full", 4000, 0.7, 4, 2, 11),
    ("parallel", "full", 4000, 0.85, 4, 2, 12),
    ("parallel", "full", 3000, 0.8, 3, 2, 13),
    ("parallel", "frontier", 4000, 0.7, 4, 2, 11),
    ("parallel", "frontier", 4000, 0.85, 4, 2, 12),
    ("parallel", "frontier", 3000, 0.8, 3, 2, 13),
    ("sequential", None, 4000, 0.7, 4, 2, 11),
    ("sequential", None, 4000, 0.85, 4, 2, 12),
    ("sequential", None, 3000, 0.8, 3, 2, 13),
    ("subtable", None, 4000, 0.7, 4, 2, 21),
    ("subtable", None, 3000, 0.75, 3, 2, 22),
]

IBLT_CASES = [
    # (decoder, num_cells, r, load, seed)
    ("subtable", 3000, 3, 0.75, 31),
    ("subtable", 4000, 4, 0.7, 32),
    ("flat", 3000, 3, 0.75, 31),
    ("flat", 4000, 4, 0.7, 32),
]

# Captured from the pre-kernel implementations; do not regenerate casually —
# a mismatch means the refactored inner loop changed observable behaviour.
GOLDEN = {
    "iblt-flat/m3000/r3/l0.75/s31": {
        "cells_scanned": 60000,
        "conflict_depths": "f9671ce2e611b544",
        "conflict_len": 19,
        "num_recovered": 2250,
        "recovered": "76df19d0dd72a97e",
        "rounds": 19,
        "stats_digest": "10ff73400fd35a95",
        "stats_len": 20,
        "subrounds": 19,
        "success": True,
    },
    "iblt-flat/m4000/r4/l0.7/s32": {
        "cells_scanned": 52000,
        "conflict_depths": "002d35b42fee5597",
        "conflict_len": 12,
        "num_recovered": 2800,
        "recovered": "8fc5afcf9e181fb3",
        "rounds": 12,
        "stats_digest": "069fd0f2a97b3fe7",
        "stats_len": 13,
        "subrounds": 12,
        "success": True,
    },
    "iblt-subtable/m3000/r3/l0.75/s31": {
        "cells_scanned": 30000,
        "conflict_depths": "f81d5bfadff8bd74",
        "conflict_len": 30,
        "num_recovered": 2250,
        "recovered": "76df19d0dd72a97e",
        "rounds": 9,
        "stats_digest": "392025c47a963920",
        "stats_len": 30,
        "subrounds": 26,
        "success": True,
    },
    "iblt-subtable/m4000/r4/l0.7/s32": {
        "cells_scanned": 28000,
        "conflict_depths": "411592a373875f7a",
        "conflict_len": 28,
        "num_recovered": 2800,
        "recovered": "8fc5afcf9e181fb3",
        "rounds": 6,
        "stats_digest": "84d32878e5ecb598",
        "stats_len": 28,
        "subrounds": 24,
        "success": True,
    },
    "parallel-frontier/n3000/c0.8/r3/k2/s13": {
        "core_size": 0,
        "edge_peel_round": "d6e1bec3f0bb2ab4",
        "num_rounds": 30,
        "num_subrounds": 30,
        "peel_order": "e3b0c44298fc1c14",
        "stats_digest": "dde80b3eb6fca24c",
        "stats_len": 30,
        "success": True,
        "total_work": 7131,
        "vertex_peel_round": "609c644bedc57d4f",
    },
    "parallel-frontier/n4000/c0.7/r4/k2/s11": {
        "core_size": 0,
        "edge_peel_round": "fad70d44f01404d6",
        "num_rounds": 13,
        "num_subrounds": 13,
        "peel_order": "e3b0c44298fc1c14",
        "stats_digest": "1f5f342fa6025f8a",
        "stats_len": 13,
        "success": True,
        "total_work": 10533,
        "vertex_peel_round": "78749d615d515ff1",
    },
    "parallel-frontier/n4000/c0.85/r4/k2/s12": {
        "core_size": 2630,
        "edge_peel_round": "3ec072ceec0e9947",
        "num_rounds": 10,
        "num_subrounds": 10,
        "peel_order": "e3b0c44298fc1c14",
        "stats_digest": "7cdbc61edde4173b",
        "stats_len": 10,
        "success": False,
        "total_work": 5995,
        "vertex_peel_round": "3c66cfb157be2ca6",
    },
    "parallel/n3000/c0.8/r3/k2/s13": {
        "core_size": 0,
        "edge_peel_round": "d6e1bec3f0bb2ab4",
        "num_rounds": 30,
        "num_subrounds": 30,
        "peel_order": "e3b0c44298fc1c14",
        "stats_digest": "099bfae4ec19885c",
        "stats_len": 30,
        "success": True,
        "total_work": 29365,
        "vertex_peel_round": "609c644bedc57d4f",
    },
    "parallel/n4000/c0.7/r4/k2/s11": {
        "core_size": 0,
        "edge_peel_round": "fad70d44f01404d6",
        "num_rounds": 13,
        "num_subrounds": 13,
        "peel_order": "e3b0c44298fc1c14",
        "stats_digest": "bb8a6cbb9d100e5c",
        "stats_len": 13,
        "success": True,
        "total_work": 23375,
        "vertex_peel_round": "78749d615d515ff1",
    },
    "parallel/n4000/c0.85/r4/k2/s12": {
        "core_size": 2630,
        "edge_peel_round": "3ec072ceec0e9947",
        "num_rounds": 10,
        "num_subrounds": 10,
        "peel_order": "e3b0c44298fc1c14",
        "stats_digest": "7589d2e33e502649",
        "stats_len": 10,
        "success": False,
        "total_work": 32101,
        "vertex_peel_round": "3c66cfb157be2ca6",
    },
    "sequential/n3000/c0.8/r3/k2/s13": {
        "core_size": 0,
        "edge_peel_round": "c7e07d55dbe3244b",
        "num_rounds": 1,
        "num_subrounds": 1,
        "peel_order": "6c41a773ba587e73",
        "stats_digest": "c63333698ae67b58",
        "stats_len": 1,
        "success": True,
        "total_work": 3335,
        "vertex_peel_round": "b506178d246c6160",
    },
    "sequential/n4000/c0.7/r4/k2/s11": {
        "core_size": 0,
        "edge_peel_round": "36e249c550ea51b1",
        "num_rounds": 1,
        "num_subrounds": 1,
        "peel_order": "af2d3aa5403153d4",
        "stats_digest": "75fe1945035ad93b",
        "stats_len": 1,
        "success": True,
        "total_work": 4965,
        "vertex_peel_round": "71870b393a2928fb",
    },
    "sequential/n4000/c0.85/r4/k2/s12": {
        "core_size": 2630,
        "edge_peel_round": "fafd9f15f866b50f",
        "num_rounds": 1,
        "num_subrounds": 1,
        "peel_order": "b0ff5665d52bb829",
        "stats_digest": "d19e34d88bf80d7d",
        "stats_len": 1,
        "success": False,
        "total_work": 989,
        "vertex_peel_round": "fe5032bfde438944",
    },
    "subtable/n3000/c0.75/r3/k2/s22": {
        "core_size": 0,
        "edge_peel_round": "70ba38553ac0b32c",
        "num_rounds": 9,
        "num_subrounds": 26,
        "peel_order": "e3b0c44298fc1c14",
        "stats_digest": "f7e3133ec9618335",
        "stats_len": 26,
        "success": True,
        "total_work": 9409,
        "vertex_peel_round": "86f2e2163f63712e",
    },
    "subtable/n4000/c0.7/r4/k2/s21": {
        "core_size": 0,
        "edge_peel_round": "b552c14f0c44c9f9",
        "num_rounds": 7,
        "num_subrounds": 27,
        "peel_order": "e3b0c44298fc1c14",
        "stats_digest": "8d73312efb51ea3d",
        "stats_len": 27,
        "success": True,
        "total_work": 13842,
        "vertex_peel_round": "76e20e6b5261f0d0",
    },
}


def _digest(arr: np.ndarray) -> str:
    return hashlib.sha256(np.ascontiguousarray(arr).tobytes()).hexdigest()[:16]


def _stats_digest(round_stats) -> str:
    return _digest(
        np.asarray(
            [
                (
                    s.round_index,
                    s.vertices_peeled,
                    s.edges_peeled,
                    s.vertices_remaining,
                    s.edges_remaining,
                    s.work,
                    -1 if s.subtable is None else s.subtable,
                )
                for s in round_stats
            ],
            dtype=np.int64,
        )
    )


def _peel_fingerprint(result) -> dict:
    return {
        "num_rounds": result.num_rounds,
        "num_subrounds": result.num_subrounds,
        "success": bool(result.success),
        "total_work": result.total_work,
        "core_size": result.core_size,
        "vertex_peel_round": _digest(result.vertex_peel_round),
        "edge_peel_round": _digest(result.edge_peel_round),
        "stats_len": len(result.round_stats),
        "stats_digest": _stats_digest(result.round_stats),
        "peel_order": _digest(result.peel_order),
    }


def _peel_case_key(engine, update, n, c, r, k, seed) -> str:
    name = "parallel-frontier" if (engine, update) == ("parallel", "frontier") else engine
    return f"{name}/n{n}/c{c}/r{r}/k{k}/s{seed}"


def _iblt_table(num_cells: int, r: int, load: float, seed: int) -> IBLT:
    table = IBLT(num_cells, r, seed=seed)
    num_keys = int(load * num_cells)
    keys = np.arange(1, num_keys + 1, dtype=np.uint64) * np.uint64(2654435761)
    table.insert(keys)
    return table


@pytest.mark.parametrize("kernel", available_kernels())
@pytest.mark.parametrize("engine,update,n,c,r,k,seed", PEEL_CASES)
def test_engine_accounting_matches_pre_kernel_golden(kernel, engine, update, n, c, r, k, seed):
    kernel = _kernel_or_skip(kernel)
    if engine == "subtable":
        graph = partitioned_hypergraph(n, c, r, seed=seed)
    else:
        graph = random_hypergraph(n, c, r, seed=seed)
    opts = {"update": update} if update is not None else {}
    result = peel(graph, engine, k=k, kernel=kernel, **opts)
    expected = GOLDEN[_peel_case_key(engine, update, n, c, r, k, seed)]
    assert _peel_fingerprint(result) == expected


@pytest.mark.parametrize("kernel", available_kernels())
@pytest.mark.parametrize("decoder,num_cells,r,load,seed", IBLT_CASES)
def test_decoder_accounting_matches_pre_kernel_golden(kernel, decoder, num_cells, r, load, seed):
    kernel = _kernel_or_skip(kernel)
    table = _iblt_table(num_cells, r, load, seed)
    result = table.decode(decoder=decoder, kernel=kernel)
    fingerprint = {
        "rounds": result.rounds,
        "subrounds": result.subrounds,
        "success": bool(result.success),
        "num_recovered": result.num_recovered,
        "recovered": _digest(np.sort(result.recovered)),
        "cells_scanned": result.decode.cells_scanned,
        "conflict_depths": _digest(np.asarray(result.conflict_depths, dtype=np.int64)),
        "conflict_len": len(result.conflict_depths),
        "stats_len": len(result.round_stats),
        "stats_digest": _stats_digest(result.round_stats),
    }
    assert fingerprint == GOLDEN[f"iblt-{decoder}/m{num_cells}/r{r}/l{load}/s{seed}"]


# The batched lockstep engine stacks many graphs into one block-diagonal
# state; peeling a golden-pinned graph inside a batch (surrounded by decoy
# graphs) must still reproduce the per-graph golden fingerprint exactly —
# rounds, peel-round arrays, per-round work, everything.

BATCHED_PEEL_CASES = [case for case in PEEL_CASES if case[0] == "parallel"]


@pytest.mark.parametrize("kernel", available_kernels())
@pytest.mark.parametrize("engine,update,n,c,r,k,seed", BATCHED_PEEL_CASES)
def test_batched_peel_many_matches_parallel_golden(kernel, engine, update, n, c, r, k, seed):
    from repro.engine import peel_many

    kernel = _kernel_or_skip(kernel)
    graph = random_hypergraph(n, c, r, seed=seed)
    decoys = [random_hypergraph(500, 0.75, r, seed=seed + 1000 + i) for i in range(2)]
    batch = [decoys[0], graph, decoys[1]]
    results = peel_many(
        batch, "parallel", k=k, update=update, kernel=kernel, backend="batched"
    )
    expected = GOLDEN[_peel_case_key(engine, update, n, c, r, k, seed)]
    assert _peel_fingerprint(results[1]) == expected
    # The decoys must equal their own per-graph runs, too.
    for decoy, result in zip(decoys, (results[0], results[2])):
        solo = peel(decoy, "parallel", k=k, update=update, kernel=kernel)
        assert _peel_fingerprint(result) == _peel_fingerprint(solo)


# The shm engines are *schedules*, not kernels: they must land on the very
# same golden fingerprints the in-process engines pinned, at any worker
# count — rounds, removals, peel-round arrays, work terms, conflict depths.

SHM_PEEL_CASES = [case[2:] for case in PEEL_CASES if case[:2] == ("parallel", "full")]
SHM_IBLT_CASES = [case[1:] for case in IBLT_CASES if case[0] == "flat"]


@pytest.mark.parametrize("num_workers", [1, 2])
@pytest.mark.parametrize("n,c,r,k,seed", SHM_PEEL_CASES)
def test_shm_engine_accounting_matches_parallel_golden(num_workers, n, c, r, k, seed):
    graph = random_hypergraph(n, c, r, seed=seed)
    result = peel(
        graph, "shm-parallel", k=k, num_workers=num_workers, barrier_timeout=30.0
    )
    expected = GOLDEN[_peel_case_key("parallel", "full", n, c, r, k, seed)]
    assert _peel_fingerprint(result) == expected


@pytest.mark.parametrize("num_workers", [1, 2])
@pytest.mark.parametrize("num_cells,r,load,seed", SHM_IBLT_CASES)
def test_shm_decoder_accounting_matches_flat_golden(num_workers, num_cells, r, load, seed):
    table = _iblt_table(num_cells, r, load, seed)
    result = table.decode(decoder="shm-flat", num_workers=num_workers, barrier_timeout=30.0)
    fingerprint = {
        "rounds": result.rounds,
        "subrounds": result.subrounds,
        "success": bool(result.success),
        "num_recovered": result.num_recovered,
        "recovered": _digest(np.sort(result.recovered)),
        "cells_scanned": result.decode.cells_scanned,
        "conflict_depths": _digest(np.asarray(result.conflict_depths, dtype=np.int64)),
        "conflict_len": len(result.conflict_depths),
        "stats_len": len(result.round_stats),
        "stats_digest": _stats_digest(result.round_stats),
    }
    assert fingerprint == GOLDEN[f"iblt-flat/m{num_cells}/r{r}/l{load}/s{seed}"]


@pytest.mark.parametrize("kernel", available_kernels())
def test_serial_iblt_decode_agrees_with_parallel_decoders(kernel):
    kernel = _kernel_or_skip(kernel)
    table = _iblt_table(3000, 3, 0.75, 31)
    serial = table.decode(decoder="serial")
    for decoder in ("flat", "subtable"):
        parallel = table.decode(decoder=decoder, kernel=kernel)
        assert parallel.success == serial.success
        assert np.array_equal(np.sort(parallel.recovered), np.sort(serial.recovered))


# Cross-kernel parity on shapes the golden corpus does not cover: edges with
# duplicate endpoints (a vertex hit twice by one edge — degrees count it
# twice, and one edge death must decrement it twice) and a CI-sized graph.
# These pin every non-reference backend against a fresh numpy run, so the
# compiled fused paths (which take the CSR-incidence route instead of the
# edge-matrix scan) are exercised on exactly the inputs where that route
# could diverge.

_NON_REFERENCE_KERNELS = [name for name in available_kernels() if name != "numpy"]


def _duplicate_endpoint_graph():
    from repro.hypergraph import hypergraph_from_edges

    rng = np.random.default_rng(97)
    n = 1200
    edges = rng.integers(0, n, size=(900, 3), dtype=np.int64)
    # Force duplicate endpoints: every 5th edge repeats its first vertex,
    # every 11th collapses to a single vertex appearing three times.
    edges[::5, 1] = edges[::5, 0]
    edges[::11, 1] = edges[::11, 0]
    edges[::11, 2] = edges[::11, 0]
    return hypergraph_from_edges(n, edges, allow_duplicate_vertices=True)


@pytest.mark.parametrize("kernel", _NON_REFERENCE_KERNELS)
@pytest.mark.parametrize("engine,update", [
    ("parallel", "full"),
    ("parallel", "frontier"),
    ("sequential", None),
])
def test_duplicate_endpoint_edges_match_numpy(kernel, engine, update):
    kernel = _kernel_or_skip(kernel)
    graph = _duplicate_endpoint_graph()
    opts = {"update": update} if update is not None else {}
    reference = peel(graph, engine, k=2, kernel="numpy", **opts)
    result = peel(graph, engine, k=2, kernel=kernel, **opts)
    assert _peel_fingerprint(result) == _peel_fingerprint(reference)


@pytest.mark.parametrize("kernel", _NON_REFERENCE_KERNELS)
@pytest.mark.parametrize("update", ["full", "frontier"])
def test_large_graph_parity_vs_numpy(kernel, update):
    # CI-scale sanity: n=1e5 at a Table 1 density, both schedule modes.
    kernel = _kernel_or_skip(kernel)
    graph = random_hypergraph(100_000, 0.7, 3, seed=5)
    reference = peel(graph, "parallel", k=2, update=update, kernel="numpy")
    result = peel(graph, "parallel", k=2, update=update, kernel=kernel)
    assert _peel_fingerprint(result) == _peel_fingerprint(reference)
