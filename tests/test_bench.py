"""Tests for the kernel benchmark harness (repro.bench / `repro bench`)."""

from __future__ import annotations

import json

import pytest

from repro.bench import format_results, run_benchmarks, write_results
from repro.kernels import available_kernels


@pytest.fixture(scope="module")
def payload():
    """One tiny benchmark run shared by the assertions below."""
    return run_benchmarks(sizes=(300,), repeats=1, batch=2)


class TestRunBenchmarks:
    def test_meta_records_provenance(self, payload):
        meta = payload["meta"]
        assert meta["sizes"] == [300]
        assert meta["repeats"] == 1
        assert meta["kernels"] == list(available_kernels())
        assert meta["timestamp"]

    def test_all_sections_present(self, payload):
        sections = {record["section"] for record in payload["results"]}
        assert sections == {"peel", "peel_many", "iblt_decode"}

    def test_peel_covers_engines_times_kernels(self, payload):
        combos = {
            (r["engine"], r["kernel"])
            for r in payload["results"]
            if r["section"] == "peel"
        }
        expected = {
            (engine, kernel)
            for engine in ("sequential", "parallel", "subtable")
            for kernel in available_kernels()
        }
        assert combos == expected

    def test_iblt_covers_decoders_times_kernels(self, payload):
        combos = {
            (r["decoder"], r["kernel"])
            for r in payload["results"]
            if r["section"] == "iblt_decode"
        }
        assert ("serial", None) in combos
        for decoder in ("flat", "subtable"):
            for kernel in available_kernels():
                assert (decoder, kernel) in combos

    def test_timings_are_positive(self, payload):
        for record in payload["results"]:
            assert record["seconds"] > 0

    def test_kernel_subset_selectable(self):
        run = run_benchmarks(sizes=(300,), kernels=("numpy",), repeats=1, batch=2)
        assert run["meta"]["kernels"] == ["numpy"]
        assert {r["kernel"] for r in run["results"]} == {"numpy", None}

    def test_json_round_trip(self, payload, tmp_path):
        out = tmp_path / "BENCH_kernels.json"
        write_results(payload, out)
        assert json.loads(out.read_text()) == json.loads(json.dumps(payload))

    def test_format_results_mentions_every_section(self, payload):
        report = format_results(payload)
        for section in ("peel", "peel_many", "iblt_decode"):
            assert section in report


class TestBenchCLI:
    def test_bench_subcommand_writes_json(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "BENCH_kernels.json"
        code = main(
            ["bench", "--quick", "--sizes", "300", "--out", str(out)]
        )
        assert code == 0
        captured = capsys.readouterr().out
        assert "wrote" in captured
        data = json.loads(out.read_text())
        # --quick overrides --sizes with the smoke sizes.
        assert data["meta"]["repeats"] == 1
        assert data["results"]

    def test_bench_default_sizes_hit_the_trajectory_points(self):
        from repro.bench import DEFAULT_SIZES

        assert set(DEFAULT_SIZES) >= {10_000, 100_000}
