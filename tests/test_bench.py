"""Tests for the kernel benchmark harness (repro.bench / `repro bench`)."""

from __future__ import annotations

import copy
import json

import pytest

from repro.bench import compare_payloads, format_results, run_benchmarks, write_results
from repro.kernels import available_kernels


@pytest.fixture(scope="module")
def payload():
    """One tiny benchmark run shared by the assertions below."""
    return run_benchmarks(
        sizes=(300,), repeats=1, batch=2, intra_sizes=(300,), intra_workers=(2,),
        batched_batches=(4,), serve_windows_ms=(2.0,), serve_requests=8,
        memory_sizes=(300,),
    )


class TestRunBenchmarks:
    def test_meta_records_provenance(self, payload):
        meta = payload["meta"]
        assert meta["sizes"] == [300]
        assert meta["repeats"] == 1
        assert meta["kernels"] == list(available_kernels())
        assert meta["timestamp"]

    def test_all_sections_present(self, payload):
        sections = {record["section"] for record in payload["results"]}
        assert sections == {
            "peel", "peel_many", "iblt_decode", "intra_trial", "batched", "serve",
            "memory", "incremental",
        }

    def test_batched_section_pairs_loop_with_fused(self, payload):
        records = [r for r in payload["results"] if r["section"] == "batched"]
        combos = {(r["engine"], r["batch"]) for r in records}
        assert combos == {("loop", 4), ("batched", 4)}

    def test_intra_trial_compares_serial_baseline_to_shm(self, payload):
        records = [r for r in payload["results"] if r["section"] == "intra_trial"]
        combos = {(r["engine"], r["workers"]) for r in records}
        assert combos == {("parallel", None), ("shm-parallel", 2)}
        rounds = {r["rounds"] for r in records}
        assert len(rounds) == 1  # identical graph, identical process

    def test_serve_section_reports_throughput_and_fusion(self, payload):
        records = [r for r in payload["results"] if r["section"] == "serve"]
        assert {r["window_ms"] for r in records} == {2.0}
        for record in records:
            assert record["batch"] == 8  # the concurrent-request count
            assert record["requests_per_s"] > 0
            assert set(record["latency_ms"]) == {"p50", "p95", "p99"}
            # 8 concurrent requests inside a 2 ms window must coalesce
            assert record["mean_batch_size"] > 1

    def test_incremental_section_pairs_scratch_with_incremental(self, payload):
        records = [r for r in payload["results"] if r["section"] == "incremental"]
        combos = {(r["engine"], r["churn"]) for r in records}
        assert combos == {
            (mode, churn)
            for mode in ("scratch", "incremental")
            for churn in (0.001, 0.01, 0.1)
        }
        for record in records:
            assert record["success"]
            assert record["kernel"] == "numpy"
            if record["engine"] == "incremental":
                assert record["cells_scanned"] >= 0
                assert record["rounds_incremental"] >= 0

    def test_peel_covers_engines_times_kernels(self, payload):
        combos = {
            (r["engine"], r["kernel"])
            for r in payload["results"]
            if r["section"] == "peel"
        }
        expected = {
            (engine, kernel)
            for engine in ("sequential", "parallel", "subtable")
            for kernel in available_kernels()
        }
        assert combos == expected

    def test_iblt_covers_decoders_times_kernels(self, payload):
        combos = {
            (r["decoder"], r["kernel"])
            for r in payload["results"]
            if r["section"] == "iblt_decode"
        }
        assert ("serial", None) in combos
        for decoder in ("flat", "subtable"):
            for kernel in available_kernels():
                assert (decoder, kernel) in combos

    def test_timings_are_positive(self, payload):
        for record in payload["results"]:
            assert record["seconds"] > 0

    def test_kernel_subset_selectable(self):
        run = run_benchmarks(
            sizes=(300,), kernels=("numpy",), repeats=1, batch=2, intra_sizes=(300,),
            batched_batches=(4,), serve_windows_ms=(2.0,), serve_requests=8,
            memory_sizes=(300,),
        )
        assert run["meta"]["kernels"] == ["numpy"]
        assert {r["kernel"] for r in run["results"]} == {"numpy", None}

    def test_json_round_trip(self, payload, tmp_path):
        out = tmp_path / "BENCH_kernels.json"
        write_results(payload, out)
        assert json.loads(out.read_text()) == json.loads(json.dumps(payload))

    def test_memory_section_pairs_compact_with_wide(self, payload):
        records = {r["engine"]: r for r in payload["results"] if r["section"] == "memory"}
        assert set(records) == {"compact", "wide"}
        assert records["wide"]["state_bytes"] > records["compact"]["state_bytes"]
        for record in records.values():
            assert record["arena_allocations_steady"] == 0
            assert record["ru_maxrss_kb"] > 0

    def test_format_results_mentions_every_section(self, payload):
        report = format_results(payload)
        for section in (
            "peel", "peel_many", "iblt_decode", "intra_trial", "batched", "serve",
            "memory", "incremental",
        ):
            assert section in report
        assert "shm-parallel[w=2]" in report
        assert "batched[B=4]" in report
        assert "[win=2ms]" in report
        assert "[churn=0.01]" in report


class TestComparePayloads:
    def test_self_comparison_has_no_regressions(self, payload):
        report, regressions = compare_payloads(payload, payload, tolerance=0.25)
        assert regressions == 0
        assert "0 regression(s)" in report

    def test_flags_regressions_past_tolerance(self, payload):
        fast_baseline = copy.deepcopy(payload)
        for record in fast_baseline["results"]:
            record["seconds"] /= 10.0  # current run is 10x slower than baseline
        report, regressions = compare_payloads(payload, fast_baseline, tolerance=0.25)
        assert regressions == len(payload["results"])
        assert "REGRESSION" in report

    def test_slowdowns_within_tolerance_pass(self, payload):
        fast_baseline = copy.deepcopy(payload)
        for record in fast_baseline["results"]:
            record["seconds"] /= 10.0
        _, regressions = compare_payloads(payload, fast_baseline, tolerance=20.0)
        assert regressions == 0

    def test_disjoint_payloads_compare_nothing(self, payload):
        other = copy.deepcopy(payload)
        for record in other["results"]:
            record["section"] = "something_else"
        report, regressions = compare_payloads(payload, other, tolerance=0.25)
        assert regressions == 0
        assert "no comparable entries" in report
        assert "not in baseline" in report and "only in baseline" in report

    def test_negative_tolerance_rejected(self, payload):
        with pytest.raises(ValueError):
            compare_payloads(payload, payload, tolerance=-0.1)

    def test_informational_sections_report_but_do_not_gate(self, payload):
        # CI de-flake: regressions in a hardware-bound section are printed
        # but never counted toward the exit code.
        fast_baseline = copy.deepcopy(payload)
        for record in fast_baseline["results"]:
            if record["section"] == "intra_trial":
                record["seconds"] /= 10.0
        report, regressions = compare_payloads(
            payload, fast_baseline, tolerance=0.25,
            informational_sections=("intra_trial",),
        )
        assert regressions == 0
        assert "regression (info)" in report
        assert "not gated" in report
        # Without the informational marker the same delta fails the gate.
        _, gated = compare_payloads(payload, fast_baseline, tolerance=0.25)
        assert gated > 0

    def test_different_seeds_never_compare(self, payload):
        reseeded = copy.deepcopy(payload)
        for record in reseeded["results"]:
            record["seed"] = 999
        report, regressions = compare_payloads(payload, reseeded, tolerance=0.25)
        assert regressions == 0
        assert "no comparable entries" in report

    def test_duplicate_record_identities_are_reported(self, payload):
        doubled = copy.deepcopy(payload)
        doubled["results"] = doubled["results"] + copy.deepcopy(doubled["results"][:1])
        report, _ = compare_payloads(doubled, payload, tolerance=20.0)
        assert "duplicate record identity" in report

    def test_resumable_artifact(self, tmp_path):
        artifact = tmp_path / "bench_sweep.json"
        first = run_benchmarks(
            sizes=(300,), repeats=1, batch=2, intra_sizes=(300,),
            batched_batches=(4,), serve_windows_ms=(2.0,), serve_requests=8,
            memory_sizes=(300,), artifact=artifact,
        )

        calls = []
        second = run_benchmarks(
            sizes=(300,), repeats=1, batch=2, intra_sizes=(300,),
            batched_batches=(4,), serve_windows_ms=(2.0,), serve_requests=8,
            memory_sizes=(300,), artifact=artifact,
            resume=True, progress=calls.append,
        )
        assert all(event.cached for event in calls)
        assert second["results"] == first["results"]


class TestBenchCLI:
    def test_bench_compare_exit_codes(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "BENCH_now.json"
        assert main(["bench", "--quick", "--sizes", "300", "--out", str(out)]) == 0
        capsys.readouterr()
        payload = json.loads(out.read_text())

        slow_baseline = copy.deepcopy(payload)
        for record in slow_baseline["results"]:
            record["seconds"] *= 1000.0
        baseline_path = tmp_path / "baseline_slow.json"
        baseline_path.write_text(json.dumps(slow_baseline))
        assert main(
            ["bench", "--quick", "--out", str(out), "--compare", str(baseline_path)]
        ) == 0
        assert "regression" in capsys.readouterr().out

        fast_baseline = copy.deepcopy(payload)
        for record in fast_baseline["results"]:
            record["seconds"] /= 1000.0
        baseline_path.write_text(json.dumps(fast_baseline))
        assert main(
            ["bench", "--quick", "--out", str(out), "--compare", str(baseline_path)]
        ) == 1
        assert "REGRESSION" in capsys.readouterr().out

    def test_bench_subcommand_writes_json(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "BENCH_kernels.json"
        code = main(
            ["bench", "--quick", "--sizes", "300", "--out", str(out)]
        )
        assert code == 0
        captured = capsys.readouterr().out
        assert "wrote" in captured
        data = json.loads(out.read_text())
        # --quick overrides --sizes with the smoke sizes.
        assert data["meta"]["repeats"] == 1
        assert data["results"]

    def test_bench_default_sizes_hit_the_trajectory_points(self):
        from repro.bench import DEFAULT_SIZES

        assert set(DEFAULT_SIZES) >= {10_000, 100_000}
