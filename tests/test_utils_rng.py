"""Tests for repro.utils.rng."""

from __future__ import annotations

import numpy as np
import pytest

from repro.utils.rng import derive_seed, resolve_rng, spawn_rngs


class TestResolveRng:
    def test_none_gives_generator(self):
        assert isinstance(resolve_rng(None), np.random.Generator)

    def test_int_seed_is_deterministic(self):
        a = resolve_rng(42).integers(0, 1000, size=10)
        b = resolve_rng(42).integers(0, 1000, size=10)
        assert np.array_equal(a, b)

    def test_different_seeds_differ(self):
        a = resolve_rng(1).integers(0, 2**31, size=20)
        b = resolve_rng(2).integers(0, 2**31, size=20)
        assert not np.array_equal(a, b)

    def test_generator_passthrough(self):
        gen = np.random.default_rng(7)
        assert resolve_rng(gen) is gen

    def test_seed_sequence_accepted(self):
        seq = np.random.SeedSequence(99)
        gen = resolve_rng(seq)
        assert isinstance(gen, np.random.Generator)

    def test_negative_seed_rejected(self):
        with pytest.raises(ValueError):
            resolve_rng(-1)

    def test_bad_type_rejected(self):
        with pytest.raises(TypeError):
            resolve_rng("not a seed")  # type: ignore[arg-type]

    def test_numpy_integer_seed_accepted(self):
        gen = resolve_rng(np.int64(5))
        assert isinstance(gen, np.random.Generator)


class TestSpawnRngs:
    def test_count(self):
        assert len(spawn_rngs(0, 5)) == 5

    def test_zero_children(self):
        assert spawn_rngs(0, 0) == []

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            spawn_rngs(0, -1)

    def test_children_are_independent(self):
        children = spawn_rngs(123, 3)
        draws = [child.integers(0, 2**31, size=16) for child in children]
        assert not np.array_equal(draws[0], draws[1])
        assert not np.array_equal(draws[1], draws[2])

    def test_reproducible_from_int_seed(self):
        first = [g.integers(0, 2**31, size=8) for g in spawn_rngs(55, 4)]
        second = [g.integers(0, 2**31, size=8) for g in spawn_rngs(55, 4)]
        for a, b in zip(first, second):
            assert np.array_equal(a, b)

    def test_spawn_from_seed_sequence(self):
        seq = np.random.SeedSequence(11)
        children = spawn_rngs(seq, 2)
        assert len(children) == 2

    def test_spawn_from_none(self):
        assert len(spawn_rngs(None, 3)) == 3

    def test_spawn_from_generator(self):
        gen = np.random.default_rng(3)
        assert len(spawn_rngs(gen, 2)) == 2


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(1, "x", 2) == derive_seed(1, "x", 2)

    def test_token_order_matters(self):
        assert derive_seed(1, "a", "b") != derive_seed(1, "b", "a")

    def test_different_base_seeds_differ(self):
        assert derive_seed(1, "x") != derive_seed(2, "x")

    def test_int_tokens(self):
        assert derive_seed(0, 7) != derive_seed(0, 8)

    def test_result_in_63_bit_range(self):
        value = derive_seed(999, "token", 123456789)
        assert 0 <= value < 2**63

    def test_none_base_seed_allowed(self):
        value = derive_seed(None, "x")
        assert isinstance(value, int)

    def test_usable_as_numpy_seed(self):
        gen = np.random.default_rng(derive_seed(5, "stream"))
        assert isinstance(gen, np.random.Generator)

    def test_string_tokens_are_process_stable(self):
        # FNV-based string hashing: a known pair must differ and be stable
        # within a process regardless of dict ordering or hash salt usage.
        a = derive_seed(10, "alpha")
        b = derive_seed(10, "beta")
        assert a != b
        assert a == derive_seed(10, "alpha")
