"""Tests for the batched lockstep peeling subsystem.

The contract under test: ``peel_many(graphs, "parallel", backend="batched")``
returns results *bit-for-bit identical* to the serial per-graph loop — same
rounds, same peel-round arrays, same per-round statistics — while executing
one fused kernel pass per round for the whole batch.  (The golden-fingerprint
pins live in test_kernel_parity.py next to the other engines'.)
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.engine import BatchedPeeler, PeelingConfig, available_engines, peel, peel_many
from repro.hypergraph import random_hypergraph
from repro.hypergraph.hypergraph import Hypergraph
from repro.kernels.batched import BatchedPeelState, batched_peel
from repro.kernels import get_kernel


def assert_identical(a, b):
    assert a.mode == b.mode
    assert a.k == b.k
    assert a.num_rounds == b.num_rounds
    assert a.num_subrounds == b.num_subrounds
    assert a.success == b.success
    np.testing.assert_array_equal(a.vertex_peel_round, b.vertex_peel_round)
    np.testing.assert_array_equal(a.edge_peel_round, b.edge_peel_round)
    assert a.round_stats == b.round_stats
    np.testing.assert_array_equal(a.peel_order, b.peel_order)


@pytest.fixture(scope="module")
def mixed_batch():
    """Graphs of different sizes, densities and outcomes (plus edgeless)."""
    graphs = [
        random_hypergraph(800, 0.7, 4, seed=1),
        random_hypergraph(300, 0.85, 4, seed=2),   # above threshold: fails
        random_hypergraph(1500, 0.75, 4, seed=3),
        random_hypergraph(40, 0.7, 4, seed=4),
    ]
    graphs.append(Hypergraph(9, np.empty((0, 4), dtype=np.int64)))  # edgeless
    return graphs


class TestBatchedMatchesSerialLoop:
    @pytest.mark.parametrize("update", ["full", "frontier"])
    def test_bitwise_parity_with_per_graph_loop(self, mixed_batch, update):
        serial = peel_many(mixed_batch, "parallel", k=2, update=update, backend="serial")
        fused = peel_many(mixed_batch, "parallel", k=2, update=update, backend="batched")
        assert len(fused) == len(mixed_batch)
        for a, b in zip(serial, fused):
            assert_identical(a, b)

    def test_parity_without_stats(self, mixed_batch):
        serial = peel_many(mixed_batch, "parallel", k=2, track_stats=False, backend="serial")
        fused = peel_many(mixed_batch, "parallel", k=2, track_stats=False, backend="batched")
        for a, b in zip(serial, fused):
            assert_identical(a, b)
            assert a.round_stats == []

    def test_parity_at_higher_k(self, mixed_batch):
        serial = peel_many(mixed_batch, "parallel", k=3, backend="serial")
        fused = peel_many(mixed_batch, "parallel", k=3, backend="batched")
        for a, b in zip(serial, fused):
            assert_identical(a, b)

    def test_results_in_input_order(self, mixed_batch):
        fused = peel_many(mixed_batch, "parallel", k=2, backend="batched")
        for graph, result in zip(mixed_batch, fused):
            assert result.num_vertices == graph.num_vertices
            assert result.num_edges == graph.num_edges

    def test_duplicate_endpoint_edges(self):
        # Hashing applications produce edges with repeated vertices; the
        # stacked degree accounting must keep the multiset semantics.
        edges = np.array([[0, 0, 1], [1, 2, 3], [2, 3, 3]], dtype=np.int64)
        graph = Hypergraph(4, edges, allow_duplicate_vertices=True)
        other = random_hypergraph(200, 0.8, 3, seed=7)
        serial = peel_many([graph, other], "parallel", k=2, backend="serial")
        fused = peel_many([graph, other], "parallel", k=2, backend="batched")
        for a, b in zip(serial, fused):
            assert_identical(a, b)


class TestBatchedDispatch:
    def test_empty_batch(self):
        assert peel_many([], "parallel", k=2, backend="batched") == []

    def test_single_graph_batch(self):
        graph = random_hypergraph(500, 0.7, 4, seed=5)
        fused = peel_many([graph], "parallel", k=2, backend="batched")[0]
        assert_identical(fused, peel(graph, "parallel", k=2))

    def test_batched_engine_name_dispatches_fused(self):
        graph = random_hypergraph(500, 0.7, 4, seed=5)
        fused = peel_many([graph], "batched", k=2, backend="batched")[0]
        assert_identical(fused, peel(graph, "parallel", k=2))

    def test_registered_as_engine(self):
        assert "batched" in available_engines()
        graph = random_hypergraph(400, 0.7, 4, seed=6)
        assert_identical(peel(graph, "batched", k=2), peel(graph, "parallel", k=2))

    def test_config_build_constructs_batched_engine(self):
        engine = PeelingConfig(engine="batched", k=3, update="frontier").build()
        assert isinstance(engine, BatchedPeeler)
        assert engine.k == 3
        assert engine.update == "frontier"

    def test_unsupported_engine_falls_back_to_serial_loop(self):
        # The BatchedBackend contract: engines the fused path does not
        # implement run through the ordinary per-graph loop.
        graphs = [random_hypergraph(300, 0.7, 4, seed=s) for s in range(2)]
        results = peel_many(graphs, "sequential", k=2, backend="batched")
        for graph, result in zip(graphs, results):
            assert_identical(result, peel(graph, "sequential", k=2))

    def test_unknown_options_rejected_on_fused_path(self):
        graphs = [random_hypergraph(100, 0.7, 4, seed=1)]
        with pytest.raises(TypeError, match="does not accept option"):
            peel_many(graphs, "parallel", k=2, warp_speed=True, backend="batched")

    def test_mixed_arity_falls_back_to_serial_loop(self):
        # The BatchedBackend contract: inputs the fused path cannot stack
        # run through the ordinary per-graph loop instead of failing.
        graphs = [
            random_hypergraph(200, 0.7, 3, seed=1),
            random_hypergraph(200, 0.7, 4, seed=2),
        ]
        results = peel_many(graphs, "parallel", k=2, backend="batched")
        for graph, got in zip(graphs, results):
            assert_identical(got, peel(graph, "parallel", k=2))

    def test_mixed_arity_rejected_by_the_engine_itself(self):
        # Direct engine use is explicit about the constraint.
        graphs = [
            random_hypergraph(200, 0.7, 3, seed=1),
            random_hypergraph(200, 0.7, 4, seed=2),
        ]
        with pytest.raises(ValueError, match="same-arity"):
            BatchedPeeler(2).peel_many(graphs)

    def test_edgeless_graphs_stack_with_anything(self):
        graphs = [
            Hypergraph(5, np.empty((0, 3), dtype=np.int64)),
            random_hypergraph(200, 0.7, 4, seed=2),
        ]
        serial = peel_many(graphs, "parallel", k=2, backend="serial")
        fused = peel_many(graphs, "parallel", k=2, backend="batched")
        for a, b in zip(serial, fused):
            assert_identical(a, b)

    def test_invalid_update_rejected(self):
        with pytest.raises(ValueError, match="update"):
            BatchedPeeler(2, update="sideways")

    def test_chunking_is_invisible_in_results(self, mixed_batch):
        # chunk_vertices is purely a performance knob: any chunking of the
        # batch must give the same results as one unchunked lockstep pass.
        unchunked = peel_many(
            mixed_batch, "parallel", k=2, chunk_vertices=10**9, backend="batched"
        )
        tiny_chunks = peel_many(
            mixed_batch, "parallel", k=2, chunk_vertices=100, backend="batched"
        )
        for a, b in zip(unchunked, tiny_chunks):
            assert_identical(a, b)

    def test_chunk_vertices_validated(self):
        with pytest.raises(ValueError):
            BatchedPeeler(2, chunk_vertices=0)

    def test_chunk_vertices_ignored_when_fallback_degrades(self):
        # The batched-only knob must not make the graceful fallback fail:
        # a mixed-arity batch with chunk_vertices runs the per-graph loop.
        graphs = [
            random_hypergraph(200, 0.7, 3, seed=1),
            random_hypergraph(200, 0.7, 4, seed=2),
        ]
        results = peel_many(
            graphs, "parallel", k=2, chunk_vertices=500, backend="batched"
        )
        for graph, got in zip(graphs, results):
            assert_identical(got, peel(graph, "parallel", k=2))

    def test_max_rounds_cap_raises_like_the_engine(self):
        graphs = [random_hypergraph(400, 0.7, 4, seed=3)]
        with pytest.raises(RuntimeError, match="did not reach a fixed point"):
            batched_peel(get_kernel(None), graphs, 2, max_rounds=1)


class TestBatchedPeelState:
    def test_offsets_partition_the_flat_arrays(self, mixed_batch):
        batch = BatchedPeelState.from_graphs(mixed_batch)
        assert batch.num_graphs == len(mixed_batch)
        assert int(batch.vertex_offsets[-1]) == sum(g.num_vertices for g in mixed_batch)
        assert int(batch.edge_offsets[-1]) == sum(g.num_edges for g in mixed_batch)
        # Block-diagonal: every edge's endpoints stay inside its graph's range.
        for g in range(batch.num_graphs):
            rows = batch.state.edges[batch.edge_offsets[g]: batch.edge_offsets[g + 1]]
            if rows.size:
                assert rows.min() >= batch.vertex_offsets[g]
                assert rows.max() < batch.vertex_offsets[g + 1]

    def test_stacked_degrees_match_per_graph_degrees(self, mixed_batch):
        batch = BatchedPeelState.from_graphs(mixed_batch)
        for g, graph in enumerate(mixed_batch):
            np.testing.assert_array_equal(
                batch.state.degrees[batch.vertex_offsets[g]: batch.vertex_offsets[g + 1]],
                graph.degrees(),
            )

    def test_incidence_round_trips_through_offsets(self, mixed_batch):
        batch = BatchedPeelState.from_graphs(mixed_batch)
        for g, graph in enumerate(mixed_batch):
            for v in range(0, graph.num_vertices, max(1, graph.num_vertices // 7)):
                flat = int(batch.vertex_offsets[g]) + v
                got = batch.incident_edges_of(np.asarray([flat])) - batch.edge_offsets[g]
                np.testing.assert_array_equal(np.sort(got), np.sort(graph.incident_edges(v)))

    def test_result_arrays_are_independent_copies(self, mixed_batch):
        results = peel_many(mixed_batch, "parallel", k=2, backend="batched")
        results[0].vertex_peel_round[:] = -77
        fresh = peel_many(mixed_batch, "parallel", k=2, backend="batched")
        assert not np.array_equal(results[0].vertex_peel_round, fresh[0].vertex_peel_round)
