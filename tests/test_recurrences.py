"""Tests for the idealized and subtable recurrences."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.recurrences import (
    iterate_recurrence,
    iterate_subtable_recurrence,
    lambda_trace,
    predicted_subtable_survivors,
    predicted_survivors,
)

# Paper Table 2, c = 0.7 (r=4, k=2, n = 1e6): predicted survivors per round.
PAPER_TABLE2_C07 = {
    1: 768922,
    2: 673647,
    3: 608076,
    4: 553064,
    5: 500466,
    6: 444828,
    7: 380873,
    8: 302531,
    9: 204442,
    10: 93245,
    11: 14159,
    12: 74,
}

# Paper Table 2, c = 0.85: the recurrence converges to a positive limit.
PAPER_TABLE2_C085 = {
    1: 853158,
    2: 811184,
    3: 793026,
    4: 784269,
    5: 779841,
    10: 775209,
    15: 775018,
    20: 775010,
}

# Paper Table 6 (subtables, c=0.7, r=4, k=2, n=1e6): lambda'_{i,j} * n.
PAPER_TABLE6_C07 = {
    (1, 1): 942230,
    (1, 2): 876807,
    (1, 3): 801855,
    (1, 4): 714875,
    (2, 1): 678767,
    (2, 4): 581912,
    (3, 4): 472470,
    (4, 4): 336458,
    (5, 4): 131789,
    (6, 4): 3649,
    (7, 1): 348,
    (7, 2): 6,
}


class TestBasicStructure:
    def test_initial_conditions(self):
        trace = iterate_recurrence(0.7, 2, 4, 5)
        assert trace.rho[0] == 1.0
        assert trace.lam[0] == 1.0
        assert trace.beta[0] == pytest.approx(4 * 0.7)
        assert trace.rounds == 5

    def test_probabilities_in_unit_interval(self):
        trace = iterate_recurrence(0.9, 3, 3, 50)
        assert ((trace.rho >= 0) & (trace.rho <= 1)).all()
        assert ((trace.lam >= 0) & (trace.lam <= 1)).all()
        assert (trace.beta >= 0).all()

    def test_lambda_below_rho(self):
        # Needing k surviving children is harder than needing k-1.
        trace = iterate_recurrence(0.7, 2, 4, 15)
        assert (trace.lam[1:] <= trace.rho[1:] + 1e-15).all()

    def test_monotone_decrease_below_threshold(self):
        trace = iterate_recurrence(0.7, 2, 4, 25)
        assert (np.diff(trace.lam[1:]) <= 1e-12).all()

    def test_lambda_trace_matches_trace(self):
        trace = iterate_recurrence(0.7, 2, 4, 8)
        assert np.allclose(lambda_trace(0.7, 2, 4, 8), trace.lam[1:])

    def test_rounds_to_extinction_below_threshold(self):
        trace = iterate_recurrence(0.7, 2, 4, 40)
        t = trace.rounds_to_extinction(tol=1e-9)
        assert t is not None and 10 < t < 20

    def test_rounds_to_extinction_above_threshold_is_none(self):
        trace = iterate_recurrence(0.85, 2, 4, 200)
        assert trace.rounds_to_extinction(tol=1e-9) is None

    def test_invalid_parameters(self):
        with pytest.raises((ValueError, TypeError)):
            iterate_recurrence(-0.5, 2, 4, 5)
        with pytest.raises((ValueError, TypeError)):
            iterate_recurrence(0.7, 0, 4, 5)


class TestPaperTable2Values:
    """The recurrence must reproduce the paper's Prediction column exactly."""

    @pytest.mark.parametrize("t,expected", sorted(PAPER_TABLE2_C07.items()))
    def test_c07_predictions(self, t, expected):
        predicted = predicted_survivors(1_000_000, 0.7, 2, 4, t)[t - 1]
        assert predicted == pytest.approx(expected, abs=1.0)

    @pytest.mark.parametrize("t,expected", sorted(PAPER_TABLE2_C085.items()))
    def test_c085_predictions(self, t, expected):
        predicted = predicted_survivors(1_000_000, 0.85, 2, 4, t)[t - 1]
        assert predicted == pytest.approx(expected, abs=1.5)

    def test_c07_extinction_round_13(self):
        # Paper: prediction drops to ~0.00001 * n at round 13 and 0 at 14.
        predicted = predicted_survivors(1_000_000, 0.7, 2, 4, 14)
        assert predicted[12] < 1.0
        assert predicted[13] < 1e-3

    def test_c085_limit_positive(self):
        predicted = predicted_survivors(1_000_000, 0.85, 2, 4, 60)
        assert predicted[-1] == pytest.approx(775_010, abs=5.0)


class TestSubtableRecurrence:
    def test_shapes(self):
        trace = iterate_subtable_recurrence(0.7, 2, 4, 6)
        assert trace.rho.shape == (7, 4)
        assert trace.lam_prime.shape == (7, 4)
        assert trace.rounds == 6

    def test_initial_rows_are_ones(self):
        trace = iterate_subtable_recurrence(0.7, 2, 4, 3)
        assert (trace.rho[0] == 1.0).all()
        assert (trace.lam[0] == 1.0).all()

    def test_lambda_prime_monotone_within_rounds(self):
        trace = iterate_subtable_recurrence(0.7, 2, 4, 6)
        flat = trace.lam_prime[1:].reshape(-1)
        assert (np.diff(flat) <= 1e-12).all()

    def test_subround_lambda_accessor(self):
        trace = iterate_subtable_recurrence(0.7, 2, 4, 3)
        assert trace.subround_lambda(1, 1) == pytest.approx(trace.lam_prime[1, 0])
        with pytest.raises(IndexError):
            trace.subround_lambda(0, 1)
        with pytest.raises(IndexError):
            trace.subround_lambda(1, 5)

    @pytest.mark.parametrize("key,expected", sorted(PAPER_TABLE6_C07.items()))
    def test_paper_table6_predictions(self, key, expected):
        i, j = key
        predicted = predicted_subtable_survivors(1_000_000, 0.7, 2, 4, i)[i - 1, j - 1]
        assert predicted == pytest.approx(expected, abs=2.0)

    def test_subtables_converge_faster_per_round_than_plain(self):
        plain = iterate_recurrence(0.7, 2, 4, 8)
        sub = iterate_subtable_recurrence(0.7, 2, 4, 8)
        # After the same number of full rounds, subtable peeling has peeled
        # strictly more (its last-subround survival is smaller).
        assert sub.lam_prime[8, -1] < plain.lam[8]

    def test_r2_rejected_message(self):
        with pytest.raises(ValueError):
            iterate_subtable_recurrence(0.7, 2, 1, 4)

    def test_above_threshold_positive_limit(self):
        trace = iterate_subtable_recurrence(0.85, 2, 4, 120)
        assert trace.lam_prime[-1, -1] > 0.5

    def test_predicted_subtable_survivors_shape(self):
        out = predicted_subtable_survivors(1000, 0.7, 2, 4, 5)
        assert out.shape == (5, 4)
        assert (out <= 1000).all() and (out >= 0).all()
