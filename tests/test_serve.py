"""Tests for the decode service: protocol, coalescer, server/client, wire apps.

The asyncio pieces run inside ``asyncio.run`` from plain sync tests (the
suite has no pytest-asyncio dependency).  The coalescer correctness pins
are the ones the service's whole value rests on: requests with different
batch keys are never fused, and every per-request result is bit-identical
to a direct ``IBLT.decode(decoder="flat")``.
"""

from __future__ import annotations

import asyncio
import json
import os
import signal
import subprocess
import sys
import time
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

import numpy as np
import pytest

from repro.apps.set_reconciliation import SetReconciler, random_set_pair
from repro.apps.sparse_recovery import random_distinct_keys
from repro.iblt import IBLT
from repro.serve import protocol
from repro.serve.batcher import MicroBatcher, batch_key
from repro.serve.client import DecodeClient, run_load
from repro.serve.metrics import ServeMetrics
from repro.serve.server import DecodeServer


def make_table(num_cells=120, r=3, *, seed=7, keys_seed=1, num_keys=50, layout="subtables"):
    table = IBLT(num_cells, r, layout=layout, seed=seed)
    table.insert(random_distinct_keys(num_keys, seed=keys_seed))
    return table


def results_identical(got, want) -> bool:
    return (
        got.success == want.success
        and got.rounds == want.rounds
        and np.array_equal(got.recovered, want.recovered)
        and np.array_equal(got.removed, want.removed)
    )


# --------------------------------------------------------------------- #
# protocol
# --------------------------------------------------------------------- #
class TestProtocol:
    def _feed(self, data: bytes) -> asyncio.StreamReader:
        reader = asyncio.StreamReader()
        reader.feed_data(data)
        reader.feed_eof()
        return reader

    def test_frame_roundtrip(self):
        async def run():
            frame = protocol.encode_frame(protocol.FRAME_DECODE_REQUEST, 42, b"hello")
            return await protocol.read_frame(self._feed(frame))

        frame_type, request_id, payload = asyncio.run(run())
        assert (frame_type, request_id, payload) == (
            protocol.FRAME_DECODE_REQUEST, 42, b"hello",
        )

    def test_oversized_frame_rejected_before_read(self):
        async def run():
            frame = protocol.encode_frame(protocol.FRAME_DECODE_REQUEST, 1, b"x" * 100)
            await protocol.read_frame(self._feed(frame), max_frame_bytes=16)

        with pytest.raises(protocol.FrameError, match="exceeds"):
            asyncio.run(run())

    def test_unknown_frame_type_rejected(self):
        async def run():
            frame = protocol.encode_frame(99, 1, b"")
            await protocol.read_frame(self._feed(frame))

        with pytest.raises(protocol.FrameError, match="unknown frame type"):
            asyncio.run(run())

    def test_mid_frame_eof_is_frame_error(self):
        async def run():
            frame = protocol.encode_frame(protocol.FRAME_DECODE_REQUEST, 1, b"payload")
            await protocol.read_frame(self._feed(frame[:-3]))

        with pytest.raises(protocol.FrameError, match="mid-frame"):
            asyncio.run(run())

    def test_decode_request_roundtrip(self):
        table = make_table()
        payload = protocol.encode_decode_request(table, signed=False)
        parsed, signed, session = protocol.decode_decode_request(payload)
        assert signed is False
        assert session is False
        assert np.array_equal(parsed.count, table.count)
        assert np.array_equal(parsed.key_sum, table.key_sum)

    def test_decode_request_session_flag_roundtrip(self):
        table = make_table()
        for want_signed in (False, True):
            payload = protocol.encode_decode_request(table, signed=want_signed, session=True)
            parsed, signed, session = protocol.decode_decode_request(payload)
            assert signed is want_signed
            assert session is True
            assert np.array_equal(parsed.count, table.count)

    def test_decode_request_bad_flags(self):
        with pytest.raises(ValueError, match="flags"):
            protocol.decode_decode_request(bytes([9]) + make_table().to_bytes())

    def test_decode_request_hostile_table(self):
        with pytest.raises(ValueError, match="magic"):
            protocol.decode_decode_request(bytes([1]) + b"garbage")

    def test_result_roundtrip(self):
        table = make_table()
        want = table.decode(decoder="flat")
        got = protocol.decode_decode_result(protocol.encode_decode_result(want))
        assert results_identical(got, want)

    def test_result_truncated(self):
        with pytest.raises(ValueError, match="truncated decode result"):
            protocol.decode_decode_result(b"\x01")

    def test_result_length_mismatch(self):
        table = make_table()
        payload = protocol.encode_decode_result(table.decode(decoder="flat"))
        with pytest.raises(ValueError, match="length mismatch"):
            protocol.decode_decode_result(payload[:-4])


# --------------------------------------------------------------------- #
# the micro-batching coalescer
# --------------------------------------------------------------------- #
class _RecordingBatcher(MicroBatcher):
    """MicroBatcher that records every executor batch it flushes."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.flushed_batches = []

    def _decode_batch(self, tables, signed):
        self.flushed_batches.append(list(tables))
        return super()._decode_batch(tables, signed)


class TestMicroBatcher:
    def _run(self, coro):
        return asyncio.run(coro)

    def test_mixed_geometry_never_fused(self):
        """Requests with different batch keys must land in different batches."""

        async def run():
            with ThreadPoolExecutor(max_workers=1) as pool:
                batcher = _RecordingBatcher(pool, batch_window=0.05, max_batch_size=64)
                tables = (
                    [make_table(num_cells=120, r=3, seed=7, keys_seed=i) for i in range(3)]
                    + [make_table(num_cells=240, r=3, seed=7, keys_seed=i) for i in range(3)]
                    + [make_table(num_cells=120, r=4, seed=7, keys_seed=i) for i in range(3)]
                    + [make_table(num_cells=120, r=3, seed=8, keys_seed=i) for i in range(3)]
                    + [make_table(num_cells=120, r=3, seed=7, layout="flat", keys_seed=i)
                       for i in range(3)]
                )
                jobs = [batcher.submit(t) for t in tables]
                # One unsigned request on the first geometry: signed is part
                # of the batch key, so it must not fuse with the signed ones.
                jobs.append(batcher.submit(make_table(num_cells=120, r=3, seed=7), signed=False))
                await asyncio.gather(*jobs)
                return batcher.flushed_batches

        batches = self._run(run())
        assert sum(len(b) for b in batches) == 16
        for batch in batches:
            keys = {batch_key(t, signed=True) for t in batch}
            # identical geometry/layout/seed within every flushed batch
            assert len({k[:4] for k in keys}) == 1
        # five signed geometry groups of 3, plus the lone unsigned request
        sizes = sorted(len(b) for b in batches)
        assert sizes == [1, 3, 3, 3, 3, 3]

    def test_results_bit_identical_to_flat_decode(self):
        tables = [make_table(keys_seed=i, num_keys=40 + i) for i in range(8)]
        # include a table loaded past the threshold so a failing decode is
        # also compared field for field
        tables.append(make_table(keys_seed=99, num_keys=118))
        expected = [t.decode(decoder="flat") for t in tables]

        async def run():
            with ThreadPoolExecutor(max_workers=1) as pool:
                batcher = MicroBatcher(pool, batch_window=0.02, max_batch_size=64)
                return await asyncio.gather(*(batcher.submit(t) for t in tables))

        results = self._run(run())
        for got, want in zip(results, expected):
            assert results_identical(got, want)
            assert [s.vertices_peeled for s in got.round_stats] == [
                s.vertices_peeled for s in want.round_stats
            ]

    def test_latency_budget_flushes_single_request(self):
        """A lone request must not wait for peers that never come."""

        async def run():
            with ThreadPoolExecutor(max_workers=1) as pool:
                batcher = MicroBatcher(pool, batch_window=0.05, max_batch_size=1024)
                loop = asyncio.get_running_loop()
                started = loop.time()
                result = await asyncio.wait_for(batcher.submit(make_table()), timeout=5.0)
                return result, loop.time() - started, batcher.metrics

        result, elapsed, metrics = self._run(run())
        assert result.success
        assert elapsed < 2.0  # flushed by the window, not a larger timeout
        assert metrics.batch_size_histogram == {1: 1}
        assert metrics.window_flushes == 1 and metrics.size_flushes == 0

    def test_max_batch_size_flushes_without_window(self):
        """Hitting the size trigger must flush immediately even with a huge window."""

        async def run():
            with ThreadPoolExecutor(max_workers=1) as pool:
                batcher = MicroBatcher(pool, batch_window=30.0, max_batch_size=4)
                tables = [make_table(keys_seed=i) for i in range(4)]
                return (
                    await asyncio.wait_for(
                        asyncio.gather(*(batcher.submit(t) for t in tables)), timeout=5.0
                    ),
                    batcher.metrics,
                )

        results, metrics = self._run(run())
        assert all(r.success for r in results)
        assert metrics.batch_size_histogram == {4: 1}
        assert metrics.size_flushes == 1

    def test_zero_window_decodes_solo(self):
        async def run():
            with ThreadPoolExecutor(max_workers=1) as pool:
                batcher = MicroBatcher(pool, batch_window=0.0, max_batch_size=64)
                result = await batcher.submit(make_table())
                return result, batcher.metrics

        result, metrics = self._run(run())
        assert result.success
        assert metrics.solo_batches == 1

    def test_drain_flushes_waiting_requests(self):
        async def run():
            with ThreadPoolExecutor(max_workers=1) as pool:
                batcher = MicroBatcher(pool, batch_window=60.0, max_batch_size=64)
                job = asyncio.ensure_future(batcher.submit(make_table()))
                await asyncio.sleep(0)  # let submit enqueue
                assert batcher.num_waiting == 1
                await batcher.drain()
                return await asyncio.wait_for(job, timeout=5.0), batcher.metrics

        result, metrics = self._run(run())
        assert result.success
        assert metrics.drain_flushes == 1


# --------------------------------------------------------------------- #
# server + client over a real socket
# --------------------------------------------------------------------- #
class TestServerClient:
    def test_concurrent_requests_fuse_and_map_back(self):
        """32 concurrent requests over one connection: all fused, each result
        routed to the request that sent its table."""
        tables = [make_table(keys_seed=i, num_keys=30 + i) for i in range(32)]
        expected = [t.decode(decoder="flat") for t in tables]

        async def run():
            server = DecodeServer(port=0, batch_window_ms=50.0, max_batch_size=64)
            await server.start()
            try:
                async with await DecodeClient.connect("127.0.0.1", server.port) as client:
                    results = await client.decode_many(tables)
                    stats = await client.stats()
            finally:
                await server.stop()
            return results, stats

        results, stats = asyncio.run(run())
        for got, want in zip(results, expected):
            assert results_identical(got, want)
        assert stats["mean_batch_size"] > 1
        assert stats["responses_sent"] == 32

    def test_session_checkpoints_match_from_scratch(self):
        """A session-flagged connection ships an evolving table; every answer
        must be bit-identical (as a key set) to a from-scratch decode of the
        shipped table, with exactly one server-side bootstrap."""
        rng = np.random.default_rng(11)
        keys = random_distinct_keys(90, seed=3)
        table = make_table(num_cells=240, r=3, seed=7, num_keys=0)
        table.insert(keys)

        async def run():
            server = DecodeServer(port=0, batch_window_ms=1.0)
            await server.start()
            answers, expected = [], []
            try:
                async with await DecodeClient.connect("127.0.0.1", server.port) as client:
                    current = keys
                    for step in range(4):
                        if step:  # churn before every re-shipment
                            drop = rng.choice(current.size, size=4, replace=False)
                            fresh = random_distinct_keys(5, seed=100 + step)
                            table.delete(current[drop])
                            table.insert(fresh)
                            current = np.concatenate([np.delete(current, drop), fresh])
                        answers.append(await client.decode(table, session=True))
                        expected.append(
                            IBLT.from_bytes(table.to_bytes()).decode(decoder="flat")
                        )
                    stats = await client.stats()
            finally:
                await server.stop()
            return answers, expected, stats

        answers, expected, stats = asyncio.run(run())
        for got, want in zip(answers, expected):
            assert got.success == want.success
            assert sorted(map(int, got.recovered)) == sorted(map(int, want.recovered))
            assert sorted(map(int, got.removed)) == sorted(map(int, want.removed))
        assert stats["session_requests"] == 4
        assert stats["session_bootstraps"] == 1

    def test_sessions_are_per_connection(self):
        """The resident state is connection-scoped: a second client shipping
        the same geometry bootstraps its own session."""
        table = make_table(num_cells=240, r=3, seed=7, num_keys=40)

        async def run():
            server = DecodeServer(port=0, batch_window_ms=1.0)
            await server.start()
            try:
                async with await DecodeClient.connect("127.0.0.1", server.port) as a:
                    async with await DecodeClient.connect("127.0.0.1", server.port) as b:
                        first = await a.decode(table, session=True)
                        second = await b.decode(table, session=True)
                        stats = await a.stats()
            finally:
                await server.stop()
            return first, second, stats

        first, second, stats = asyncio.run(run())
        assert first.success and second.success
        assert sorted(map(int, first.recovered)) == sorted(map(int, second.recovered))
        assert stats["session_bootstraps"] == 2

    def test_concurrent_connections_isolate_results(self):
        """Three clients with distinct workloads sharing one server: every
        result returns to the connection that asked for it."""
        workloads = [
            [make_table(keys_seed=100 * c + i, num_keys=25 + i) for i in range(8)]
            for c in range(3)
        ]
        expected = [[t.decode(decoder="flat") for t in tables] for tables in workloads]

        async def run():
            server = DecodeServer(port=0, batch_window_ms=50.0, max_batch_size=256)
            await server.start()
            try:
                clients = [
                    await DecodeClient.connect("127.0.0.1", server.port) for _ in range(3)
                ]
                try:
                    all_results = await asyncio.gather(
                        *(client.decode_many(tables)
                          for client, tables in zip(clients, workloads))
                    )
                    stats = await clients[0].stats()
                finally:
                    for client in clients:
                        await client.close()
            finally:
                await server.stop()
            return all_results, stats

        all_results, stats = asyncio.run(run())
        for results, wants in zip(all_results, expected):
            for got, want in zip(results, wants):
                assert results_identical(got, want)
        # same geometry + seed across connections: cross-connection fusion
        assert stats["mean_batch_size"] > 1

    def test_malformed_request_fails_only_that_request(self):
        table = make_table()
        want = table.decode(decoder="flat")

        async def run():
            server = DecodeServer(port=0, batch_window_ms=1.0)
            await server.start()
            try:
                async with await DecodeClient.connect("127.0.0.1", server.port) as client:
                    bad = client._request(
                        protocol.FRAME_DECODE_REQUEST, bytes([1]) + b"not an iblt"
                    )
                    with pytest.raises(protocol.RemoteDecodeError, match="magic"):
                        await bad
                    # the connection and the server both survive
                    good = await client.decode(table)
                    stats = await client.stats()
            finally:
                await server.stop()
            return good, stats

        good, stats = asyncio.run(run())
        assert results_identical(good, want)
        assert stats["errors"] == 1 and stats["responses_sent"] == 1

    def test_unframeable_stream_closes_connection_not_server(self):
        async def run():
            server = DecodeServer(port=0, batch_window_ms=1.0, max_frame_bytes=64 * 1024)
            await server.start()
            try:
                reader, writer = await asyncio.open_connection("127.0.0.1", server.port)
                writer.write(b"\xff\xff\xff\xff garbage that is not a frame")
                await writer.drain()
                frame_type, request_id, payload = await protocol.read_frame(reader)
                assert frame_type == protocol.FRAME_ERROR and request_id == 0
                assert await reader.read() == b""  # server closed this connection
                writer.close()
                await writer.wait_closed()
                # ... but still serves new connections
                table = make_table()
                async with await DecodeClient.connect("127.0.0.1", server.port) as client:
                    return await client.decode(table), table.decode(decoder="flat")
            finally:
                await server.stop()

        got, want = asyncio.run(run())
        assert results_identical(got, want)

    def test_signed_flag_respected_end_to_end(self):
        # A difference digest with net-deleted keys: unsigned decoding cannot
        # list the negative side, signed decoding can.
        a = random_distinct_keys(40, seed=21)
        b = np.concatenate([a[:30], random_distinct_keys(10, seed=22)])
        digest_a, digest_b = IBLT(120, 3, seed=5), IBLT(120, 3, seed=5)
        digest_a.insert(a)
        digest_b.insert(b)
        diff = digest_a.subtract(digest_b)
        want_signed = diff.decode(decoder="flat", signed=True)
        want_unsigned = diff.decode(decoder="flat", signed=False)

        async def run():
            server = DecodeServer(port=0, batch_window_ms=1.0)
            await server.start()
            try:
                async with await DecodeClient.connect("127.0.0.1", server.port) as client:
                    got_signed = await client.decode(diff, signed=True)
                    got_unsigned = await client.decode(diff, signed=False)
            finally:
                await server.stop()
            return got_signed, got_unsigned

        got_signed, got_unsigned = asyncio.run(run())
        assert results_identical(got_signed, want_signed)
        assert got_signed.success and got_signed.removed.size == 10
        assert results_identical(got_unsigned, want_unsigned)
        assert not got_unsigned.success

    def test_run_load_verifies_against_local_decode(self):
        async def run():
            server = DecodeServer(port=0, batch_window_ms=10.0)
            await server.start()
            try:
                return await run_load(
                    "127.0.0.1", server.port,
                    requests=12, connections=2, num_cells=120, r=3, load=0.5, seed=3,
                )
            finally:
                await server.stop()

        summary = asyncio.run(run())
        assert summary["mismatches"] == []
        assert summary["requests"] == 12
        assert summary["server_stats"]["responses_sent"] == 12
        assert set(summary["latency_ms"]) == {"p50", "p95", "p99"}

    def test_graceful_stop_answers_admitted_requests(self):
        tables = [make_table(keys_seed=i) for i in range(6)]
        expected = [t.decode(decoder="flat") for t in tables]

        async def run():
            server = DecodeServer(port=0, batch_window_ms=60_000.0, max_batch_size=1024)
            await server.start()
            client = await DecodeClient.connect("127.0.0.1", server.port)
            try:
                jobs = [asyncio.ensure_future(client.decode(t)) for t in tables]
                # wait until the server has admitted everything into the batcher
                for _ in range(200):
                    if server.batcher.num_waiting == len(tables):
                        break
                    await asyncio.sleep(0.01)
                # stop() drains: the hour-long window must not matter
                stop = asyncio.ensure_future(server.stop())
                results = await asyncio.wait_for(asyncio.gather(*jobs), timeout=10.0)
                await asyncio.wait_for(stop, timeout=10.0)
                return results
            finally:
                await client.close()

        results = asyncio.run(run())
        for got, want in zip(results, expected):
            assert results_identical(got, want)


# --------------------------------------------------------------------- #
# metrics
# --------------------------------------------------------------------- #
class TestServeMetrics:
    def test_snapshot_shape_and_percentiles(self):
        metrics = ServeMetrics()
        for latency in (0.001, 0.002, 0.003, 0.004):
            metrics.observe_latency(latency)
        metrics.observe_batch(3, trigger="window")
        metrics.observe_batch(1, trigger="size")
        snap = metrics.snapshot()
        assert snap["batches_flushed"] == 2
        assert snap["fused_batches"] == 1 and snap["solo_batches"] == 1
        assert snap["mean_batch_size"] == 2.0
        assert snap["batch_size_histogram"] == {"1": 1, "3": 1}
        assert 1.0 <= snap["latency_ms"]["p50"] <= 4.0
        assert snap["latency_ms"]["p99"] <= 4.0
        json.dumps(snap)  # JSON-ready by contract

    def test_empty_metrics_are_json_safe(self):
        snap = ServeMetrics().snapshot()
        assert snap["mean_batch_size"] == 0.0
        assert snap["latency_ms"] == {"p50": 0.0, "p95": 0.0, "p99": 0.0}
        json.dumps(snap)


# --------------------------------------------------------------------- #
# the first app over the service: set reconciliation
# --------------------------------------------------------------------- #
class TestReconcileViaService:
    def test_loopback_reconciliation(self):
        a, b = random_set_pair(400, 12, 9, seed=31)
        reconciler = SetReconciler(180, 3, seed=17)
        peer_payload = SetReconciler(180, 3, seed=17).digest_payload(b)

        async def run():
            server = DecodeServer(port=0, batch_window_ms=5.0)
            await server.start()
            try:
                async with await DecodeClient.connect("127.0.0.1", server.port) as client:
                    return await reconciler.reconcile_via_service(
                        a, peer_payload, client=client
                    )
            finally:
                await server.stop()

        result = asyncio.run(run())
        assert result.success
        assert sorted(map(int, result.a_minus_b)) == sorted(
            set(map(int, a)) - set(map(int, b))
        )
        assert sorted(map(int, result.b_minus_a)) == sorted(
            set(map(int, b)) - set(map(int, a))
        )
        assert result.bytes_exchanged == len(peer_payload)

    def test_many_peers_fuse_into_one_batch(self):
        """One host reconciling against a fleet of peers through the service:
        the difference digests share a hash family, so they fuse."""
        reconciler = SetReconciler(180, 3, seed=23)
        pairs = [random_set_pair(300, 5 + i, 4, seed=40 + i) for i in range(8)]
        payloads = [reconciler.digest_payload(b) for _, b in pairs]

        async def run():
            server = DecodeServer(port=0, batch_window_ms=50.0)
            await server.start()
            try:
                async with await DecodeClient.connect("127.0.0.1", server.port) as client:
                    results = await asyncio.gather(*(
                        reconciler.reconcile_via_service(a, payload, client=client)
                        for (a, _), payload in zip(pairs, payloads)
                    ))
                    stats = await client.stats()
            finally:
                await server.stop()
            return results, stats

        results, stats = asyncio.run(run())
        assert all(r.success for r in results)
        for result, (a, b) in zip(results, pairs):
            assert sorted(map(int, result.a_minus_b)) == sorted(
                set(map(int, a)) - set(map(int, b))
            )
        assert stats["mean_batch_size"] > 1

    def test_geometry_mismatch_rejected(self):
        reconciler = SetReconciler(180, 3, seed=23)
        peer_payload = SetReconciler(240, 3, seed=23).digest_payload([1, 2, 3])

        async def run():
            await reconciler.reconcile_via_service([1, 2], peer_payload, client=None)

        with pytest.raises(ValueError, match="hash family"):
            asyncio.run(run())


# --------------------------------------------------------------------- #
# console integration: `repro serve` + `repro decode-client`
# --------------------------------------------------------------------- #
class TestConsoleIntegration:
    def test_serve_and_decode_client_subprocess(self, tmp_path: Path):
        """The CI smoke in miniature: ephemeral-port server as a subprocess,
        the client CLI in-process, SIGINT drain with a clean exit."""
        if sys.platform.startswith("win"):
            pytest.skip("POSIX signals required")
        from repro.cli import main as cli_main

        port_file = tmp_path / "serve.port"
        env = dict(os.environ)
        src = str(Path(__file__).resolve().parents[1] / "src")
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.Popen(
            [
                sys.executable, "-m", "repro", "serve",
                "--port", "0", "--batch-window-ms", "20",
                "--port-file", str(port_file),
            ],
            env=env,
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
        )
        try:
            deadline = time.monotonic() + 30
            while time.monotonic() < deadline and not port_file.exists():
                if proc.poll() is not None:
                    raise AssertionError(f"server died early: {proc.stderr.read()}")
                time.sleep(0.05)
            port = int(port_file.read_text())
            code = cli_main([
                "decode-client", "--port", str(port), "--requests", "16",
                "--num-cells", "120", "--load", "0.5",
                "--expect-mean-batch-gt", "1",
            ])
            assert code == 0
        finally:
            proc.send_signal(signal.SIGINT)
            stdout, stderr = proc.communicate(timeout=30)
        assert proc.returncode == 0, stderr
        snapshot = json.loads(stdout)  # the graceful-shutdown metrics dump
        assert snapshot["responses_sent"] == 16
        assert snapshot["mean_batch_size"] > 1
