"""Tests for the shared kernel layer: state, primitives, registry, hooks."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.results import UNPEELED
from repro.hypergraph import Hypergraph, random_hypergraph
from repro.kernels import (
    DEFAULT_KERNEL,
    NumpyKernel,
    PeelState,
    PeelingKernel,
    available_kernels,
    get_kernel,
    peel_subround,
    register_kernel,
    remove_hyperedges,
    unregister_kernel,
)


class TestRegistry:
    def test_numpy_always_registered(self):
        assert "numpy" in available_kernels()
        assert DEFAULT_KERNEL == "numpy"

    def test_get_default(self):
        kernel = get_kernel()
        assert isinstance(kernel, NumpyKernel)
        assert kernel.name == "numpy"

    def test_get_by_name(self):
        assert isinstance(get_kernel("numpy"), NumpyKernel)

    def test_instance_passthrough(self):
        kernel = NumpyKernel()
        assert get_kernel(kernel) is kernel

    def test_unknown_name_lists_available(self):
        with pytest.raises(ValueError, match="unknown kernel 'gpu'.*'numpy'"):
            get_kernel("gpu")

    def test_invalid_type(self):
        with pytest.raises(TypeError):
            get_kernel(42)  # type: ignore[arg-type]

    def test_register_and_unregister(self):
        class LoudKernel(NumpyKernel):
            name = "loud"

        register_kernel("loud", LoudKernel)
        try:
            assert "loud" in available_kernels()
            assert isinstance(get_kernel("loud"), LoudKernel)
            with pytest.raises(ValueError, match="already registered"):
                register_kernel("loud", NumpyKernel)
        finally:
            unregister_kernel("loud")
        assert "loud" not in available_kernels()

    def test_satisfies_protocol(self):
        assert isinstance(NumpyKernel(), PeelingKernel)

    def test_every_registered_kernel_resolves(self):
        for name in available_kernels():
            assert get_kernel(name).name == name


class TestPeelState:
    def test_from_graph(self, tiny_graph):
        state = PeelState.from_graph(tiny_graph)
        assert state.num_vertices == tiny_graph.num_vertices
        assert state.num_edges == tiny_graph.num_edges
        assert state.vertex_alive.all()
        assert state.edge_alive.all()
        assert (state.vertex_peel_round == UNPEELED).all()
        assert (state.edge_peel_round == UNPEELED).all()
        assert state.vertices_remaining == tiny_graph.num_vertices
        assert state.edges_remaining == tiny_graph.num_edges
        assert not state.done
        assert np.array_equal(state.degrees, tiny_graph.degrees())

    def test_degrees_are_a_copy(self, tiny_graph):
        state = PeelState.from_graph(tiny_graph)
        state.degrees[:] = 0
        assert tiny_graph.degrees().sum() > 0


class TestPeelSubround:
    def test_single_step_matches_manual(self, tiny_graph):
        kernel = get_kernel()
        state = PeelState.from_graph(tiny_graph)
        outcome = peel_subround(kernel, state, 2, 1)
        # Vertices 0 (degree 1) and 5 (degree 0) go in round 1, killing edge 0.
        assert sorted(outcome.removable.tolist()) == [0, 5]
        assert outcome.num_dying == 1
        assert outcome.examined == tiny_graph.num_vertices
        assert state.vertex_peel_round[0] == 1
        assert state.edge_peel_round[0] == 1
        assert state.vertices_remaining == 4
        assert state.edges_remaining == 3

    def test_fixed_point_returns_empty(self, tiny_graph):
        kernel = get_kernel()
        state = PeelState.from_graph(tiny_graph)
        peel_subround(kernel, state, 2, 1)
        outcome = peel_subround(kernel, state, 2, 2)
        assert outcome.num_removed == 0
        assert outcome.num_dying == 0

    def test_candidates_restrict_examination(self, tiny_graph):
        kernel = get_kernel()
        state = PeelState.from_graph(tiny_graph)
        candidates = np.array([1, 2, 5], dtype=np.int64)
        outcome = peel_subround(kernel, state, 2, 1, candidates=candidates)
        assert outcome.examined == 3
        assert outcome.removable.tolist() == [5]

    def test_collect_touched_seeds_frontier(self, path_like_graph):
        kernel = get_kernel()
        state = PeelState.from_graph(path_like_graph)
        outcome = peel_subround(kernel, state, 2, 1, collect_touched=True)
        assert outcome.touched.size > 0
        kernel.refresh_frontier(state, outcome.touched)
        assert state.frontier is not None
        # Only live vertices survive into the frontier.
        assert state.vertex_alive[state.frontier].all()

    def test_edge_effect_hook_sees_dying_edges(self, tiny_graph):
        kernel = get_kernel()
        state = PeelState.from_graph(tiny_graph)
        seen = []
        peel_subround(kernel, state, 2, 1, edge_effect=lambda dying: seen.append(dying.copy()))
        assert len(seen) == 1
        assert seen[0].tolist() == [0]

    def test_edge_effect_not_called_without_deaths(self):
        # k=1 on an edgeless graph: vertices die but no edges do.
        graph = Hypergraph(3, np.empty((0, 2), dtype=np.int64))
        kernel = get_kernel()
        state = PeelState.from_graph(graph)
        calls = []
        outcome = peel_subround(kernel, state, 1, 1, edge_effect=calls.append)
        assert outcome.num_removed == 3
        assert calls == []


class TestScatterPrimitives:
    def test_remove_hyperedges_matches_ufunc_at(self):
        rng = np.random.default_rng(7)
        kernel = get_kernel()
        cells = rng.integers(0, 50, size=(20, 3), dtype=np.int64)
        deltas = rng.choice(np.array([-1, 1], dtype=np.int64), size=20)
        keys = rng.integers(1, 2**63, size=20, dtype=np.uint64)
        counts = np.zeros(50, dtype=np.int64)
        payload = np.zeros(50, dtype=np.uint64)

        expected_counts = counts.copy()
        expected_payload = payload.copy()
        for j in range(3):
            np.subtract.at(expected_counts, cells[:, j], deltas)
            np.bitwise_xor.at(expected_payload, cells[:, j], keys)

        remove_hyperedges(kernel, cells, counts, deltas, payloads=((payload, keys),))
        assert np.array_equal(counts, expected_counts)
        assert np.array_equal(payload, expected_payload)

    def test_scatter_degree_updates_multiset(self):
        kernel = get_kernel()
        degrees = np.array([3, 3, 3], dtype=np.int64)
        # Vertex 1 appears twice (duplicate endpoints within one edge).
        kernel.scatter_degree_updates(degrees, np.array([1, 1, 2], dtype=np.int64))
        assert degrees.tolist() == [3, 1, 2]

    def test_pure_cells_range_and_checksum(self):
        kernel = get_kernel()
        count = np.array([1, 2, -1, 1, 0], dtype=np.int64)
        key_sum = np.array([5, 9, 7, 0, 0], dtype=np.uint64)
        checksum_fn = lambda keys: keys + np.uint64(1)  # noqa: E731
        check_sum = checksum_fn(key_sum)
        check_sum[3] = 0  # cell 3 has a zero key: never pure

        pure = kernel.pure_cells(count, key_sum, check_sum, checksum_fn, signed=True)
        assert pure.tolist() == [0, 2]
        unsigned = kernel.pure_cells(count, key_sum, check_sum, checksum_fn, signed=False)
        assert unsigned.tolist() == [0]
        # Range selection returns absolute indices.
        tail = kernel.pure_cells(count, key_sum, check_sum, checksum_fn, signed=True, start=2, stop=5)
        assert tail.tolist() == [2]


class TestEngineKernelOption:
    def test_engines_accept_kernel_instances(self):
        from repro.core import ParallelPeeler, SequentialPeeler

        graph = random_hypergraph(500, 0.6, 3, seed=4)
        kernel = NumpyKernel()
        by_name = ParallelPeeler(2, kernel="numpy").peel(graph)
        by_instance = ParallelPeeler(2, kernel=kernel).peel(graph)
        assert np.array_equal(by_name.vertex_peel_round, by_instance.vertex_peel_round)
        seq = SequentialPeeler(2, kernel=kernel).peel(graph)
        assert seq.success == by_name.success

    def test_unknown_kernel_raises_at_construction(self):
        from repro.core import ParallelPeeler

        with pytest.raises(ValueError, match="unknown kernel"):
            ParallelPeeler(2, kernel="gpu")

    def test_peel_front_door_accepts_kernel(self):
        from repro.engine import peel

        graph = random_hypergraph(500, 0.6, 3, seed=4)
        result = peel(graph, "parallel", k=2, kernel="numpy")
        assert result.success

    def test_config_round_trips_kernel(self):
        from repro.engine import PeelingConfig

        config = PeelingConfig(engine="parallel", k=2, kernel="numpy")
        assert PeelingConfig.from_dict(config.to_dict()) == config
        engine = config.build()
        assert engine.kernel.name == "numpy"

    def test_config_rejects_bad_kernel_type(self):
        from repro.engine import PeelingConfig

        with pytest.raises(TypeError):
            PeelingConfig(engine="parallel", k=2, kernel=3)  # type: ignore[arg-type]

    def test_decoders_accept_kernel(self):
        from repro.iblt import IBLT

        table = IBLT(300, 3, seed=9)
        table.insert(np.arange(1, 150, dtype=np.uint64))
        for decoder in ("flat", "subtable"):
            result = table.decode(decoder=decoder, kernel="numpy")
            baseline = table.decode(decoder=decoder)
            assert np.array_equal(np.sort(result.recovered), np.sort(baseline.recovered))
