"""Tests for the SequentialPeeler baseline."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import ParallelPeeler, SequentialPeeler, peel_to_kcore
from repro.core.results import UNPEELED
from repro.hypergraph import Hypergraph, kcore, random_hypergraph


class TestCorrectness:
    def test_tiny_graph(self, tiny_graph):
        result = SequentialPeeler(2).peel(tiny_graph)
        assert not result.success
        assert result.core_size == 3
        assert result.core_edge_mask.tolist() == [False, True, True, True]

    def test_path_graph(self, path_like_graph):
        result = SequentialPeeler(2).peel(path_like_graph)
        assert result.success
        assert result.peel_order.size == path_like_graph.num_edges

    def test_empty_graph(self):
        graph = Hypergraph(5, np.empty((0, 3), dtype=np.int64))
        result = SequentialPeeler(2).peel(graph)
        assert result.success
        assert result.peel_order.size == 0

    def test_same_core_as_parallel(self, small_below_threshold, small_above_threshold):
        for graph in (small_below_threshold, small_above_threshold):
            seq = SequentialPeeler(2).peel(graph)
            par = ParallelPeeler(2).peel(graph)
            assert np.array_equal(seq.core_edge_mask, par.core_edge_mask)
            assert np.array_equal(seq.core_vertex_mask & (graph.degrees() > 0),
                                  par.core_vertex_mask & (graph.degrees() > 0))

    def test_same_core_as_kcore(self):
        for seed in range(3):
            graph = random_hypergraph(1500, 1.0, 3, seed=seed)
            seq = SequentialPeeler(2).peel(graph)
            ref = kcore(graph, 2)
            assert np.array_equal(seq.core_edge_mask, ref.edge_mask)

    @pytest.mark.parametrize("k", [2, 3, 4])
    def test_various_k(self, k):
        graph = random_hypergraph(1000, 1.8, 3, seed=k)
        seq = SequentialPeeler(k).peel(graph)
        ref = kcore(graph, k)
        assert np.array_equal(seq.core_edge_mask, ref.edge_mask)


class TestPeelOrder:
    def test_peel_order_is_valid_permutation_of_removed_edges(self, small_below_threshold):
        result = SequentialPeeler(2).peel(small_below_threshold)
        removed = np.flatnonzero(result.edge_peel_round != UNPEELED)
        assert sorted(result.peel_order.tolist()) == sorted(removed.tolist())
        assert len(set(result.peel_order.tolist())) == result.peel_order.size

    def test_peel_order_respects_degree_invariant(self):
        # Replaying the recorded order must always find, at the moment an edge
        # is removed, at least one endpoint with residual degree < k.
        graph = random_hypergraph(400, 0.6, 3, seed=17)
        k = 2
        result = SequentialPeeler(k).peel(graph)
        degrees = graph.degrees().astype(int)
        alive = np.ones(graph.num_edges, dtype=bool)
        for e in result.peel_order:
            endpoints = graph.edge_vertices(int(e))
            assert alive[e]
            assert (degrees[endpoints] < k).any()
            alive[e] = False
            degrees[endpoints] -= 1

    def test_mode_and_rounds_fields(self, tiny_graph):
        result = SequentialPeeler(2).peel(tiny_graph)
        assert result.mode == "sequential"
        assert result.num_rounds in (0, 1)

    def test_track_stats_false(self, tiny_graph):
        result = SequentialPeeler(2, track_stats=False).peel(tiny_graph)
        assert result.round_stats == []

    def test_convenience_api(self, tiny_graph):
        result = peel_to_kcore(tiny_graph, 2, mode="sequential")
        assert result.mode == "sequential"
