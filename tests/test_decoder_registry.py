"""Tests for the IBLT decoder registry and ``IBLT.decode(decoder=...)``."""

from __future__ import annotations

import numpy as np
import pytest

from repro.iblt import (
    IBLT,
    FlatParallelDecoder,
    IBLTDecodeResult,
    ParallelDecodeResult,
    SerialDecoder,
    SubtableParallelDecoder,
    available_decoders,
    get_decoder,
    register_decoder,
    unregister_decoder,
)


@pytest.fixture
def loaded_table() -> tuple:
    table = IBLT(3_000, 3, layout="subtables", seed=5)
    keys = np.arange(1, 2_001, dtype=np.uint64)
    table.insert(keys)
    return table, keys


class TestRegistry:
    def test_builtin_decoders(self):
        assert set(available_decoders()) == {
            "serial", "flat", "subtable", "shm-flat", "batched",
        }

    def test_get_decoder_by_name(self):
        assert get_decoder("serial") is SerialDecoder
        assert get_decoder("flat") is FlatParallelDecoder
        assert get_decoder("subtable") is SubtableParallelDecoder

    def test_unknown_decoder_lists_available(self):
        with pytest.raises(ValueError, match="unknown decoder 'gpu'.*'subtable'"):
            get_decoder("gpu")

    def test_register_decoder(self):
        class NoisyFlat(FlatParallelDecoder):
            pass

        register_decoder("noisy", NoisyFlat)
        try:
            assert "noisy" in available_decoders()
            with pytest.raises(ValueError, match="already registered"):
                register_decoder("noisy", FlatParallelDecoder)
        finally:
            unregister_decoder("noisy")
        assert "noisy" not in available_decoders()

    def test_historical_aliases_resolve_but_are_not_listed(self):
        assert get_decoder("parallel") is SubtableParallelDecoder
        assert get_decoder("flat-parallel") is FlatParallelDecoder
        assert "parallel" not in available_decoders()
        assert "flat-parallel" not in available_decoders()

    def test_register_rejects_bad_arguments(self):
        with pytest.raises(TypeError):
            register_decoder("", FlatParallelDecoder)
        with pytest.raises(TypeError):
            register_decoder("thing", 42)


class TestDecodeDispatch:
    def test_default_is_serial(self, loaded_table):
        table, keys = loaded_table
        result = table.decode()
        assert isinstance(result, IBLTDecodeResult)
        assert result.success
        assert sorted(result.recovered.tolist()) == keys.tolist()

    def test_subtable_matches_decoder_class(self, loaded_table):
        table, _ = loaded_table
        via_name = table.decode(decoder="subtable")
        via_class = SubtableParallelDecoder().decode(table)
        assert isinstance(via_name, ParallelDecodeResult)
        assert via_name.success == via_class.success
        assert via_name.rounds == via_class.rounds
        assert via_name.subrounds == via_class.subrounds
        np.testing.assert_array_equal(
            np.sort(via_name.recovered), np.sort(via_class.recovered)
        )

    def test_flat_matches_decoder_class(self, loaded_table):
        table, _ = loaded_table
        via_name = table.decode(decoder="flat")
        via_class = FlatParallelDecoder().decode(table)
        assert via_name.rounds == via_class.rounds
        np.testing.assert_array_equal(
            np.sort(via_name.recovered), np.sort(via_class.recovered)
        )

    def test_all_decoders_recover_the_same_set(self, loaded_table):
        table, keys = loaded_table
        for name in available_decoders():
            result = table.decode(decoder=name)
            assert result.success, name
            assert sorted(np.asarray(result.recovered).tolist()) == keys.tolist(), name

    def test_decoder_options_forwarded(self, loaded_table):
        table, _ = loaded_table
        result = table.decode(decoder="subtable", track_conflicts=False)
        assert result.conflict_depths == []

    def test_unknown_decoder_raises(self, loaded_table):
        table, _ = loaded_table
        with pytest.raises(ValueError, match="unknown decoder"):
            table.decode(decoder="gpu")

    def test_decode_does_not_mutate_by_default(self, loaded_table):
        table, _ = loaded_table
        before = table.count.copy()
        table.decode(decoder="subtable")
        np.testing.assert_array_equal(table.count, before)

    def test_in_place_forwarded(self, loaded_table):
        table, _ = loaded_table
        scratch = table.copy()
        result = scratch.decode(decoder="subtable", in_place=True)
        assert result.success
        assert scratch.is_empty()

    def test_signed_decoding_of_difference_digest(self):
        a = IBLT(1_200, 3, seed=9)
        b = IBLT(1_200, 3, seed=9)
        a.insert(np.asarray([1, 2, 3, 4], dtype=np.uint64))
        b.insert(np.asarray([3, 4, 5, 6], dtype=np.uint64))
        for name in available_decoders():
            outcome = a.subtract(b).decode(decoder=name)
            assert outcome.success, name
            assert sorted(outcome.recovered.tolist()) == [1, 2], name
            assert sorted(outcome.removed.tolist()) == [5, 6], name

    def test_num_recovered_uniform_across_result_types(self, loaded_table):
        table, keys = loaded_table
        assert table.decode().num_recovered == keys.size
        assert table.decode(decoder="subtable").num_recovered == keys.size

    def test_decode_accepts_historical_aliases(self, loaded_table):
        table, keys = loaded_table
        for alias in ("parallel", "flat-parallel"):
            result = table.decode(decoder=alias)
            assert result.success
            assert result.num_recovered == keys.size


class TestTable34DecoderValidation:
    def test_rejects_decoders_without_round_stats(self):
        from repro.experiments.table34 import run_iblt_experiment

        with pytest.raises(ValueError, match="round statistics"):
            run_iblt_experiment(3, 0.5, num_cells=600, decoder="serial")

    def test_rejects_unknown_decoder_with_name_listing(self):
        from repro.experiments.table34 import run_iblt_experiment

        with pytest.raises(ValueError, match="unknown decoder"):
            run_iblt_experiment(3, 0.5, num_cells=600, decoder="gpu")
