"""Tests for fibonacci growth rates and round-complexity predictions."""

from __future__ import annotations

import math

import pytest

from repro.analysis.fibonacci import (
    fibonacci_growth_rate,
    fibonacci_sequence,
    subtable_round_ratio,
)
from repro.analysis.rounds import (
    gao_leading_constant,
    leading_constant_below,
    leading_constant_subtables,
    predict_rounds,
    rounds_above_threshold,
    rounds_below_threshold,
    rounds_near_threshold,
    rounds_with_subtables,
)
from repro.analysis.thresholds import peeling_threshold


class TestFibonacciSequence:
    def test_order2_is_classic_fibonacci(self):
        assert fibonacci_sequence(2, 10) == [1, 1, 2, 3, 5, 8, 13, 21, 34, 55]

    def test_order3_tribonacci(self):
        assert fibonacci_sequence(3, 8) == [1, 1, 1, 3, 5, 9, 17, 31]

    def test_short_lengths(self):
        assert fibonacci_sequence(3, 2) == [1, 1]
        assert fibonacci_sequence(2, 1) == [1]

    def test_invalid_args(self):
        with pytest.raises((ValueError, TypeError)):
            fibonacci_sequence(0, 5)
        with pytest.raises((ValueError, TypeError)):
            fibonacci_sequence(2, 0)

    def test_growth_matches_rate(self):
        seq = fibonacci_sequence(3, 40)
        ratio = seq[-1] / seq[-2]
        assert ratio == pytest.approx(fibonacci_growth_rate(3), rel=1e-6)


class TestGrowthRate:
    def test_golden_ratio(self):
        assert fibonacci_growth_rate(2) == pytest.approx((1 + math.sqrt(5)) / 2, rel=1e-9)

    def test_paper_constants(self):
        # Paper: phi_2 ≈ 1.61, phi_3 ≈ 1.83, phi_4 ≈ 1.92.
        assert fibonacci_growth_rate(2) == pytest.approx(1.618, abs=1e-3)
        assert fibonacci_growth_rate(3) == pytest.approx(1.839, abs=1e-3)
        assert fibonacci_growth_rate(4) == pytest.approx(1.928, abs=1e-3)

    def test_order_one(self):
        assert fibonacci_growth_rate(1) == 1.0

    def test_rates_increase_towards_two(self):
        rates = [fibonacci_growth_rate(p) for p in range(2, 9)]
        assert all(a < b for a, b in zip(rates, rates[1:]))
        assert rates[-1] < 2.0

    def test_rate_is_root_of_characteristic_polynomial(self):
        for order in (2, 3, 4, 5):
            phi = fibonacci_growth_rate(order)
            assert phi**order == pytest.approx(sum(phi**i for i in range(order)), rel=1e-9)


class TestSubtableRoundRatio:
    def test_paper_value_r3_k2(self):
        # Paper: log(r-1)/log(phi_{r-1}) ≈ 1.456 for r=3 (k=2).
        assert subtable_round_ratio(2, 3) == pytest.approx(
            math.log(2) / math.log(fibonacci_growth_rate(2)), rel=1e-12
        )
        assert subtable_round_ratio(2, 3) == pytest.approx(1.44, abs=0.05)

    def test_large_r_approaches_log2(self):
        ratio = subtable_round_ratio(2, 9)
        assert ratio == pytest.approx(math.log2(8), abs=0.12)

    def test_ratio_below_r(self):
        for r in (3, 4, 5, 6):
            assert subtable_round_ratio(2, r) < r

    def test_invalid_r(self):
        with pytest.raises(ValueError):
            subtable_round_ratio(2, 2)

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            subtable_round_ratio(1, 3)


class TestLeadingConstants:
    def test_theorem1_constant(self):
        assert leading_constant_below(2, 4) == pytest.approx(1 / math.log(3), rel=1e-12)
        assert leading_constant_below(3, 3) == pytest.approx(1 / math.log(4), rel=1e-12)

    def test_theorem1_requires_k_plus_r_ge_5(self):
        with pytest.raises(ValueError):
            leading_constant_below(2, 2)

    def test_gao_constant_is_larger(self):
        for k, r in [(2, 3), (2, 4), (3, 3), (3, 4)]:
            assert gao_leading_constant(k, r) > leading_constant_below(k, r)

    def test_gao_invalid_combination(self):
        with pytest.raises(ValueError):
            gao_leading_constant(2, 2)

    def test_theorem7_constant(self):
        expected = 1.0 / (math.log(fibonacci_growth_rate(3)) + math.log(1))
        assert leading_constant_subtables(2, 4) == pytest.approx(expected, rel=1e-12)

    def test_theorem7_requires_r_ge_3(self):
        with pytest.raises(ValueError):
            leading_constant_subtables(2, 2)

    def test_subtable_constant_larger_than_plain_for_k2(self):
        # More subrounds than plain rounds (but less than r times as many).
        for r in (3, 4, 5):
            assert leading_constant_subtables(2, r) > leading_constant_below(2, r)
            assert leading_constant_subtables(2, r) < r * leading_constant_below(2, r)


class TestRoundFormulas:
    def test_below_threshold_grows_like_loglog(self):
        small = rounds_below_threshold(10**4, 2, 4)
        large = rounds_below_threshold(10**8, 2, 4)
        assert large > small
        assert large - small < 1.0  # log log grows extremely slowly

    def test_below_threshold_additive_constant(self):
        base = rounds_below_threshold(10**6, 2, 4)
        assert rounds_below_threshold(10**6, 2, 4, constant=3.0) == pytest.approx(base + 3.0)

    def test_subtable_formula(self):
        assert rounds_with_subtables(10**6, 2, 4) > rounds_below_threshold(10**6, 2, 4)

    def test_above_threshold_requires_c_above(self):
        with pytest.raises(ValueError):
            rounds_above_threshold(10**6, 0.5, 2, 4)

    def test_above_threshold_scales_with_log_n(self):
        c = peeling_threshold(2, 4) + 0.05
        assert rounds_above_threshold(10**8, c, 2, 4) == pytest.approx(
            2 * rounds_above_threshold(10**4, c, 2, 4), rel=1e-9
        )

    def test_small_n_rejected(self):
        with pytest.raises(ValueError):
            rounds_below_threshold(2, 2, 4)


class TestPredictRounds:
    def test_below_threshold_prediction_matches_simulation_scale(self):
        prediction = predict_rounds(1_000_000, 0.7, 2, 4)
        assert prediction.regime == "below"
        # Paper Table 1: ~13 rounds at this density for large n.
        assert 12 <= prediction.rounds <= 15

    def test_above_threshold_prediction(self):
        prediction = predict_rounds(1_000_000, 0.85, 2, 4)
        assert prediction.regime == "above"
        # Paper Table 1: ~18-20 rounds at n ≈ 1.28M-2.56M.
        assert 14 <= prediction.rounds <= 28

    def test_above_threshold_rounds_grow_with_n(self):
        small = predict_rounds(10_000, 0.85, 2, 4).rounds
        large = predict_rounds(2_560_000, 0.85, 2, 4).rounds
        assert large > small + 4

    def test_below_threshold_rounds_nearly_flat_in_n(self):
        small = predict_rounds(10_000, 0.7, 2, 4).rounds
        large = predict_rounds(2_560_000, 0.7, 2, 4).rounds
        assert large - small <= 2

    def test_threshold_field(self):
        prediction = predict_rounds(1000, 0.7, 2, 4)
        assert prediction.threshold == pytest.approx(peeling_threshold(2, 4))

    def test_below_regime_leading_term_is_theorem1(self):
        prediction = predict_rounds(1_000_000, 0.7, 2, 4)
        assert prediction.leading_term == pytest.approx(
            rounds_below_threshold(1_000_000, 2, 4)
        )


class TestCriticalRegimeLeadingTerm:
    """Theorem 5: the critical window carries an additive Θ(sqrt(1/ν)) term.

    Regression: predict_rounds used to label the critical regime with the
    bare Theorem 1 below-threshold leading term, which misses the plateau
    entirely — these tests fail on that behaviour.
    """

    def test_near_threshold_leading_term_includes_plateau(self):
        c_star = peeling_threshold(2, 4)
        nu = 1e-10  # inside the default critical window (tol=1e-9)
        prediction = predict_rounds(1_000_000, c_star - nu, 2, 4)
        assert prediction.regime == "critical"
        below = rounds_below_threshold(1_000_000, 2, 4)
        assert prediction.leading_term == pytest.approx(below + math.sqrt(1.0 / nu))
        # The plateau term dominates: the old (Theorem-1-only) value is
        # orders of magnitude too small.
        assert prediction.leading_term > 100 * below

    def test_exactly_at_threshold_diverges(self):
        c_star = peeling_threshold(2, 4)
        prediction = predict_rounds(1_000_000, c_star, 2, 4)
        assert prediction.regime == "critical"
        assert math.isinf(prediction.leading_term)

    def test_helper_is_symmetric_in_nu(self):
        c_star = peeling_threshold(2, 4)
        below = rounds_near_threshold(10**6, c_star - 1e-10, 2, 4)
        above = rounds_near_threshold(10**6, c_star + 1e-10, 2, 4)
        assert below == pytest.approx(above)

    def test_helper_additive_constant(self):
        c_star = peeling_threshold(2, 4)
        base = rounds_near_threshold(10**6, c_star - 1e-10, 2, 4)
        assert rounds_near_threshold(
            10**6, c_star - 1e-10, 2, 4, constant=3.0
        ) == pytest.approx(base + 3.0)

    def test_helper_grows_as_nu_shrinks(self):
        c_star = peeling_threshold(2, 4)
        wider = rounds_near_threshold(10**6, c_star - 1e-6, 2, 4)
        tighter = rounds_near_threshold(10**6, c_star - 1e-8, 2, 4)
        assert tighter > wider
        # Θ(sqrt(1/ν)) scaling: 100x closer → 10x larger plateau term.
        below = rounds_below_threshold(10**6, 2, 4)
        assert (tighter - below) == pytest.approx(10 * (wider - below), rel=1e-6)

    def test_helper_rejects_tiny_n(self):
        with pytest.raises(ValueError):
            rounds_near_threshold(2, 0.77, 2, 4)

    def test_near_threshold_takes_many_rounds(self):
        # At c = 0.772 (nu ≈ 0.0003) Theorem 5 predicts a ~sqrt(1/nu) ≈ 60
        # round plateau on top of the log log n term.
        prediction = predict_rounds(1_000_000, 0.772, 2, 4)
        assert prediction.rounds > 40
