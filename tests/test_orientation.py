"""Tests for the peeling-based orientation / multi-choice hash table."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import peeling_threshold
from repro.apps.orientation import MultiChoiceHashTable, PeelingOrienter
from repro.apps.sparse_recovery import random_distinct_keys
from repro.hypergraph import Hypergraph, random_hypergraph


class TestPeelingOrienter:
    @pytest.mark.parametrize("mode", ["parallel", "sequential"])
    def test_below_threshold_orients_with_load_one(self, mode):
        # max_load=1 -> peel to the 2-core; c=0.7 < c*_{2,3} ≈ 0.818.
        graph = random_hypergraph(5000, 0.7, 3, seed=1)
        result = PeelingOrienter(1, mode=mode).orient(graph)
        assert result.success
        assert result.max_load <= 1
        assert result.unassigned == 0
        assert (result.assignment >= 0).all()

    def test_assignment_targets_are_edge_members(self):
        graph = random_hypergraph(3000, 0.7, 3, seed=2)
        result = PeelingOrienter(1).orient(graph)
        edges = graph.edges
        for e in range(0, graph.num_edges, 37):
            assert result.assignment[e] in edges[e]

    def test_loads_consistent_with_assignment(self):
        graph = random_hypergraph(3000, 0.7, 3, seed=3)
        result = PeelingOrienter(1).orient(graph)
        recomputed = np.bincount(result.assignment, minlength=graph.num_vertices)
        assert np.array_equal(recomputed, result.loads)

    def test_above_threshold_fails_with_unassigned_edges(self):
        graph = random_hypergraph(5000, 0.9, 3, seed=4)  # above c*_{2,3}
        result = PeelingOrienter(1).orient(graph)
        assert not result.success
        assert result.unassigned > 0

    def test_higher_capacity_uses_higher_core(self):
        # max_load=2 -> 3-core threshold c*_{3,3} ≈ 1.553; density 1.4 is
        # below it, so orientation with load 2 succeeds even though load-1
        # orientation is hopeless at that density.
        graph = random_hypergraph(5000, 1.4, 3, seed=5)
        assert not PeelingOrienter(1).orient(graph).success
        result = PeelingOrienter(2).orient(graph)
        assert result.success
        assert result.max_load <= 2

    def test_parallel_rounds_reported(self):
        graph = random_hypergraph(20_000, 0.7, 3, seed=6)
        result = PeelingOrienter(1, mode="parallel").orient(graph)
        assert result.success
        assert 1 <= result.rounds <= 30

    def test_invalid_mode(self):
        with pytest.raises(ValueError):
            PeelingOrienter(1, mode="diagonal")  # type: ignore[arg-type]

    def test_empty_graph(self):
        graph = Hypergraph(10, np.empty((0, 3), dtype=np.int64))
        result = PeelingOrienter(1).orient(graph)
        assert result.success
        assert result.unassigned == 0

    @given(
        n=st.integers(min_value=9, max_value=120),
        m=st.integers(min_value=0, max_value=80),
        r=st.integers(min_value=2, max_value=4),
        capacity=st.integers(min_value=1, max_value=3),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=40, deadline=None)
    def test_property_load_bound_always_respected(self, n, m, r, capacity, seed):
        """Whenever orientation claims success, every vertex load is within
        the bound and every edge points at one of its own vertices."""
        graph = random_hypergraph(n, 1.0, r, num_edges=m, seed=seed)
        result = PeelingOrienter(capacity).orient(graph)
        assigned = result.assignment >= 0
        # Loads recomputed from scratch must respect the bound on success.
        if result.success:
            assert assigned.all()
            assert result.loads.max(initial=0) <= capacity
        if m:
            edges = graph.edges
            rows = np.flatnonzero(assigned)
            for e in rows:
                assert result.assignment[e] in edges[e]


class TestMultiChoiceHashTable:
    def test_build_and_lookup(self):
        keys = random_distinct_keys(4000, seed=7)
        table = MultiChoiceHashTable(6000, r=3, bucket_capacity=1, seed=8)
        assert table.build(keys)
        assert table.is_built
        assert table.bucket_loads().max() <= 1
        for key in keys[:200]:
            assert int(key) in table
        misses = random_distinct_keys(200, seed=9)
        false_positives = sum(1 for key in misses if int(key) in table and int(key) not in set(map(int, keys)))
        assert false_positives == 0

    def test_build_fails_above_threshold(self):
        c_star = peeling_threshold(2, 3)
        num_buckets = 3000
        keys = random_distinct_keys(int((c_star + 0.08) * num_buckets), seed=10)
        table = MultiChoiceHashTable(num_buckets, r=3, bucket_capacity=1, seed=11)
        assert not table.build(keys)
        assert not table.is_built

    def test_capacity_two_allows_higher_load(self):
        num_buckets = 3000
        keys = random_distinct_keys(int(1.4 * num_buckets), seed=12)
        table = MultiChoiceHashTable(num_buckets, r=3, bucket_capacity=2, seed=13)
        assert table.build(keys)
        assert table.bucket_loads().max() <= 2
        assert int(keys[0]) in table

    def test_lookup_before_build_raises(self):
        table = MultiChoiceHashTable(300, r=3)
        with pytest.raises(RuntimeError):
            _ = 5 in table
        with pytest.raises(RuntimeError):
            table.bucket_loads()

    def test_duplicate_keys_rejected(self):
        table = MultiChoiceHashTable(300, r=3)
        with pytest.raises(ValueError):
            table.build(np.array([5, 5], dtype=np.uint64))

    def test_zero_key_rejected(self):
        table = MultiChoiceHashTable(300, r=3)
        with pytest.raises(ValueError):
            table.build(np.array([0], dtype=np.uint64))

    def test_construction_rounds_small(self):
        keys = random_distinct_keys(20_000, seed=14)
        table = MultiChoiceHashTable(30_000, r=3, bucket_capacity=1, seed=15)
        assert table.build(keys)
        assert table.construction_rounds <= 25
