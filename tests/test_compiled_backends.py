"""Compiled kernel tier: lazy registration, fused dispatch, warm-up plumbing.

The parity suite (test_kernel_parity.py) pins every backend's *results*;
this module covers the machinery around the compiled tier: the lazy
registry (a broken toolchain must surface as a clear, cached
``KernelUnavailableError`` — never poison imports or silently vanish), the
optional fused hooks' decline-and-fall-back contract in the shared round
loop, and the benchmark harness's warm-up / ``compile_ms`` accounting.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.hypergraph import random_hypergraph
from repro.kernels import (
    KernelUnavailableError,
    NumpyKernel,
    PeelState,
    available_kernels,
    get_kernel,
    peel_subround,
    register_lazy_kernel,
    remove_hyperedges,
    ready_kernels,
    unregister_kernel,
)
from repro.kernels.rounds import SubroundOutcome


# --------------------------------------------------------------------- #
# lazy registry
# --------------------------------------------------------------------- #
class _BoomError(ImportError):
    pass


def test_lazy_kernel_failure_is_cached_and_names_the_cause():
    calls = []

    def loader():
        calls.append(1)
        raise _BoomError("libfoo.so: undefined symbol")

    register_lazy_kernel("broken-test-kernel", loader)
    try:
        assert "broken-test-kernel" in available_kernels()
        with pytest.raises(KernelUnavailableError) as excinfo:
            get_kernel("broken-test-kernel")
        message = str(excinfo.value)
        assert "broken-test-kernel" in message
        assert "_BoomError" in message
        assert "undefined symbol" in message
        # The loader ran once; every later lookup replays the cached failure.
        with pytest.raises(KernelUnavailableError):
            get_kernel("broken-test-kernel")
        assert calls == [1]
        # A failed backend drops out of the declared set and the ready set.
        assert "broken-test-kernel" not in available_kernels()
        assert "broken-test-kernel" not in ready_kernels()
    finally:
        unregister_kernel("broken-test-kernel")


def test_lazy_kernel_success_promotes_to_eager():
    loads = []

    def loader():
        loads.append(1)
        return NumpyKernel

    register_lazy_kernel("lazy-test-kernel", loader)
    try:
        assert isinstance(get_kernel("lazy-test-kernel"), NumpyKernel)
        assert isinstance(get_kernel("lazy-test-kernel"), NumpyKernel)
        assert loads == [1]
        assert "lazy-test-kernel" in ready_kernels()
    finally:
        unregister_kernel("lazy-test-kernel")


def test_lazy_registration_rejects_taken_names_without_overwrite():
    with pytest.raises(ValueError, match="already registered"):
        register_lazy_kernel("numpy", lambda: NumpyKernel)


def test_unregister_unknown_kernel_raises():
    with pytest.raises(Exception):
        unregister_kernel("never-registered-kernel")


def test_broken_kernel_does_not_break_other_backends():
    register_lazy_kernel("broken-test-kernel", lambda: 1 / 0)
    try:
        with pytest.raises(KernelUnavailableError):
            get_kernel("broken-test-kernel")
        assert "numpy" in ready_kernels()
        assert isinstance(get_kernel("numpy"), NumpyKernel)
    finally:
        unregister_kernel("broken-test-kernel")


def test_kernels_module_getattr_rejects_unknown_names():
    import repro.kernels as kernels

    with pytest.raises(AttributeError):
        kernels.no_such_symbol  # noqa: B018


# --------------------------------------------------------------------- #
# fused-hook dispatch contract
# --------------------------------------------------------------------- #
class _DecliningFusedKernel(NumpyKernel):
    name = "declining-fused"

    def __init__(self):
        self.fused_calls = 0

    def fused_subround(self, state, k, round_index, *, candidates=None,
                       collect_touched=False, edge_effect=None):
        self.fused_calls += 1
        return None  # always decline → generic path must run

    def fused_remove_hyperedges(self, cells, counts, deltas, payloads):
        self.fused_calls += 1
        return False


class _ShortCircuitKernel(NumpyKernel):
    name = "short-circuit-fused"

    SENTINEL = SubroundOutcome(np.array([7], dtype=np.int64), 0,
                               np.empty(0, dtype=np.int64), 42)

    def fused_subround(self, state, k, round_index, *, candidates=None,
                       collect_touched=False, edge_effect=None):
        return self.SENTINEL


def _tiny_state():
    graph = random_hypergraph(300, 0.7, 3, seed=3)
    return graph, PeelState.from_graph(graph)


def test_declined_fused_subround_falls_back_to_reference_path():
    graph, state = _tiny_state()
    kernel = _DecliningFusedKernel()
    outcome = peel_subround(kernel, state, 2, 1)
    assert kernel.fused_calls == 1
    _, reference = _tiny_state()
    expected = peel_subround(NumpyKernel(), reference, 2, 1)
    assert np.array_equal(outcome.removable, expected.removable)
    assert outcome.num_dying == expected.num_dying
    assert outcome.examined == expected.examined
    assert np.array_equal(state.degrees, reference.degrees)
    assert np.array_equal(state.vertex_alive, reference.vertex_alive)


def test_fused_subround_outcome_short_circuits_the_generic_path():
    _, state = _tiny_state()
    untouched = state.degrees.copy()
    outcome = peel_subround(_ShortCircuitKernel(), state, 2, 1)
    assert outcome is _ShortCircuitKernel.SENTINEL
    # The generic path never ran: the state is untouched.
    assert np.array_equal(state.degrees, untouched)
    assert state.vertex_alive.all()


def test_declined_fused_remove_hyperedges_falls_back():
    kernel = _DecliningFusedKernel()
    counts = np.array([3, 2, 1], dtype=np.int64)
    cells = np.array([[0, 2]], dtype=np.int64)
    deltas = np.array([1], dtype=np.int64)
    key_sum = np.array([5, 0, 5], dtype=np.uint64)
    check_sum = np.array([9, 0, 9], dtype=np.uint64)
    remove_hyperedges(kernel, cells, counts, deltas,
                      payloads=((key_sum, np.array([5], dtype=np.uint64)),
                                (check_sum, np.array([9], dtype=np.uint64))))
    assert kernel.fused_calls == 1
    assert counts.tolist() == [2, 2, 0]
    assert key_sum.tolist() == [0, 0, 0]
    assert check_sum.tolist() == [0, 0, 0]


# --------------------------------------------------------------------- #
# cffi backend specifics (skipped with reason when the toolchain is absent)
# --------------------------------------------------------------------- #
def _cffi_kernel_or_skip():
    if "cffi" not in available_kernels():
        pytest.skip("cffi backend not declared (no cffi module or no C compiler)")
    try:
        return get_kernel("cffi")
    except KernelUnavailableError as exc:
        pytest.skip(f"cffi backend unavailable: {exc}")


def test_cffi_fused_subround_declines_without_incidence():
    kernel = _cffi_kernel_or_skip()
    _, state = _tiny_state()
    assert state.incidence_ptr is None
    assert kernel.fused_subround(state, 2, 1) is None
    assert state.vertex_alive.all()  # declined without touching the state


@pytest.mark.parametrize("wide_ids", [False, True], ids=["compact", "wide"])
def test_cffi_fused_subround_matches_reference_with_incidence(wide_ids):
    kernel = _cffi_kernel_or_skip()
    graph = random_hypergraph(300, 0.7, 3, seed=3)
    # from_graph attaches an id-layout-consistent CSR incidence; both the
    # compact (uint32/int32) and wide (int64) C flavours must accept their
    # layout and reproduce the reference path exactly.
    state = PeelState.from_graph(graph, wide_ids=wide_ids, attach_incidence=True)
    _, reference = _tiny_state()
    for round_index in range(1, 5):
        got = kernel.fused_subround(state, 2, round_index)
        want = peel_subround(NumpyKernel(), reference, 2, round_index)
        assert got is not None
        assert np.array_equal(got.removable, want.removable)
        assert got.num_dying == want.num_dying
        assert got.examined == want.examined
    assert np.array_equal(state.degrees, reference.degrees)
    assert np.array_equal(state.vertex_peel_round, reference.vertex_peel_round)
    assert np.array_equal(state.edge_peel_round, reference.edge_peel_round)
    assert state.vertices_remaining == reference.vertices_remaining
    assert state.edges_remaining == reference.edges_remaining


def test_cffi_fused_subround_declines_mixed_id_layouts():
    kernel = _cffi_kernel_or_skip()
    graph = random_hypergraph(300, 0.7, 3, seed=3)
    state = PeelState.from_graph(graph)  # compact mutable arrays
    assert state.degrees.dtype == np.int32  # sanity: the graph fits compact
    # Wide int64 incidence on a compact state is a layout mix the C tier
    # must decline rather than reinterpret the bytes of.
    state.incidence_ptr = graph.incidence_ptr
    state.incidence_edges = graph.incidence_edges
    assert kernel.fused_subround(state, 2, 1) is None
    assert state.vertex_alive.all()  # declined without touching the state


def test_cffi_fused_remove_hyperedges_declines_unexpected_payloads():
    kernel = _cffi_kernel_or_skip()
    counts = np.zeros(4, dtype=np.int64)
    cells = np.array([[0, 1]], dtype=np.int64)
    deltas = np.array([1], dtype=np.int64)
    # One payload instead of the IBLT's two: must decline.
    assert not kernel.fused_remove_hyperedges(
        cells, counts, deltas,
        ((np.zeros(4, dtype=np.uint64), np.array([1], dtype=np.uint64)),),
    )
    # Wrong count dtype: must decline.
    assert not kernel.fused_remove_hyperedges(
        cells, np.zeros(4, dtype=np.int32), deltas,
        ((np.zeros(4, dtype=np.uint64), np.array([1], dtype=np.uint64)),
         (np.zeros(4, dtype=np.uint64), np.array([1], dtype=np.uint64))),
    )


def test_cffi_scatters_match_numpy_reference():
    kernel = _cffi_kernel_or_skip()
    reference = NumpyKernel()
    rng = np.random.default_rng(17)
    idx = rng.integers(0, 50, size=400).astype(np.int64)

    a = rng.integers(0, 1000, size=50).astype(np.int64)
    b = a.copy()
    vals = rng.integers(0, 9, size=400).astype(np.int64)
    kernel.scatter_sub(a, idx, vals)
    reference.scatter_sub(b, idx, vals)
    assert np.array_equal(a, b)

    x = rng.integers(0, 2**63, size=50, dtype=np.uint64)
    y = x.copy()
    xvals = rng.integers(0, 2**63, size=400, dtype=np.uint64)
    kernel.scatter_xor(x, idx, xvals)
    reference.scatter_xor(y, idx, xvals)
    assert np.array_equal(x, y)

    d1 = rng.integers(5, 1000, size=50).astype(np.int64)
    d2 = d1.copy()
    kernel.scatter_degree_updates(d1, idx)
    reference.scatter_degree_updates(d2, idx)
    assert np.array_equal(d1, d2)


def test_cffi_library_build_is_cached():
    _cffi_kernel_or_skip()
    from repro.kernels import cffi_backend

    first = cffi_backend.ensure_library()
    assert first.exists()
    assert cffi_backend.ensure_library() == first  # cached, no rebuild


# --------------------------------------------------------------------- #
# bench warm-up / compile_ms plumbing
# --------------------------------------------------------------------- #
def test_bench_warmup_returns_milliseconds():
    from repro.bench import _warmup_kernel

    assert _warmup_kernel(None) is None
    ms = _warmup_kernel("numpy")
    assert isinstance(ms, float) and ms >= 0.0


def test_bench_records_carry_compile_ms():
    from repro.bench import _bench_peel_trial

    record = _bench_peel_trial(
        {"section": "peel", "engine": "parallel", "kernel": "numpy",
         "n": 400, "c": 0.7, "r": 3, "k": 2, "seed": 1, "repeats": 1},
        np.random.default_rng(0),
    )
    assert record["compile_ms"] is not None and record["compile_ms"] >= 0.0
    assert record["seconds"] > 0.0


def test_bench_kernels_csv_flag_merges_with_repeatable_flag():
    import argparse

    from repro.bench import add_bench_arguments

    parser = argparse.ArgumentParser()
    add_bench_arguments(parser)
    args = parser.parse_args(["--kernel", "numpy", "--kernels", "numpy,cffi"])
    merged = list(args.kernels or [])
    if args.kernels_csv:
        merged.extend(s.strip() for s in args.kernels_csv.split(",") if s.strip())
    assert merged == ["numpy", "numpy", "cffi"]
