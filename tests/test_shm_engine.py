"""Tests for the shared-memory intra-trial parallel peeling engine.

The contract under test: ``"shm-parallel"`` is the *same process* as the
in-process parallel engine — bit-for-bit identical results and accounting at
every worker count — plus the operational properties of the worker pool
(registry/config/CLI wiring, degenerate inputs, and the deadlock guard that
turns a wedged barrier into a fast failure).
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.core.peeling import ParallelPeeler
from repro.engine import PeelingConfig, available_engines, peel, peel_many
from repro.hypergraph import Hypergraph, random_hypergraph
from repro.parallel.shm import (
    ShmLayout,
    ShmParallelPeeler,
    ShmPoolError,
    ShmWorkerPool,
    partition_bounds,
)

TIMEOUT = 30.0  # generous deadlock guard for every pool in this module


def _assert_same_result(got, ref):
    assert got.num_rounds == ref.num_rounds
    assert got.num_subrounds == ref.num_subrounds
    assert got.success == ref.success
    assert np.array_equal(got.vertex_peel_round, ref.vertex_peel_round)
    assert np.array_equal(got.edge_peel_round, ref.edge_peel_round)
    assert got.round_stats == ref.round_stats


class TestParity:
    @pytest.mark.parametrize("num_workers", [1, 2, 3])
    def test_matches_parallel_engine_below_threshold(self, small_below_threshold, num_workers):
        ref = ParallelPeeler(2, update="full").peel(small_below_threshold)
        got = ShmParallelPeeler(2, num_workers=num_workers, barrier_timeout=TIMEOUT).peel(
            small_below_threshold
        )
        _assert_same_result(got, ref)

    def test_matches_parallel_engine_above_threshold(self, small_above_threshold):
        ref = ParallelPeeler(2, update="full").peel(small_above_threshold)
        got = ShmParallelPeeler(2, num_workers=2, barrier_timeout=TIMEOUT).peel(
            small_above_threshold
        )
        assert not got.success  # a 2-core survives above the threshold
        _assert_same_result(got, ref)

    def test_mode_string(self, tiny_graph):
        result = ShmParallelPeeler(2, num_workers=2, barrier_timeout=TIMEOUT).peel(tiny_graph)
        assert result.mode == "shm-parallel"

    def test_k_three(self):
        graph = random_hypergraph(1500, 0.8, 3, seed=9)
        ref = ParallelPeeler(3, update="full").peel(graph)
        got = ShmParallelPeeler(3, num_workers=2, barrier_timeout=TIMEOUT).peel(graph)
        _assert_same_result(got, ref)

    def test_track_stats_off(self, tiny_graph):
        result = ShmParallelPeeler(
            2, num_workers=2, track_stats=False, barrier_timeout=TIMEOUT
        ).peel(tiny_graph)
        assert result.round_stats == []
        assert result.num_rounds == ParallelPeeler(2).peel(tiny_graph).num_rounds


class TestDegenerateInputs:
    def test_empty_edge_set(self):
        graph = Hypergraph(5, np.empty((0, 3), dtype=np.int64))
        got = ShmParallelPeeler(2, num_workers=2, barrier_timeout=TIMEOUT).peel(graph)
        ref = ParallelPeeler(2).peel(graph)
        _assert_same_result(got, ref)
        assert got.success and got.num_rounds == 1  # isolated vertices peel in round 1

    def test_empty_vertex_set(self):
        graph = Hypergraph(0, np.empty((0, 3), dtype=np.int64))
        got = ShmParallelPeeler(2, num_workers=4, barrier_timeout=TIMEOUT).peel(graph)
        assert got.success and got.num_rounds == 0

    def test_more_workers_than_vertices(self, path_like_graph):
        ref = ParallelPeeler(2).peel(path_like_graph)
        got = ShmParallelPeeler(2, num_workers=64, barrier_timeout=TIMEOUT).peel(path_like_graph)
        _assert_same_result(got, ref)


class TestWiring:
    def test_registered(self):
        assert "shm-parallel" in available_engines()

    def test_front_door(self, small_below_threshold):
        ref = peel(small_below_threshold, "parallel", k=2)
        got = peel(small_below_threshold, "shm-parallel", k=2, num_workers=2,
                   barrier_timeout=TIMEOUT)
        _assert_same_result(got, ref)

    def test_config_round_trip(self, tiny_graph):
        config = PeelingConfig(
            engine="shm-parallel", k=2,
            options={"num_workers": 2, "barrier_timeout": TIMEOUT},
        )
        rebuilt = PeelingConfig.from_dict(config.to_dict())
        result = rebuilt.build().peel(tiny_graph)
        assert result.num_rounds == ParallelPeeler(2).peel(tiny_graph).num_rounds

    def test_peel_many(self, tiny_graph, path_like_graph):
        results = peel_many(
            [tiny_graph, path_like_graph], "shm-parallel", k=2,
            num_workers=2, barrier_timeout=TIMEOUT,
        )
        assert [r.num_rounds for r in results] == [
            ParallelPeeler(2).peel(g).num_rounds for g in (tiny_graph, path_like_graph)
        ]

    def test_invalid_workers(self):
        with pytest.raises(ValueError):
            ShmParallelPeeler(2, num_workers=0)

    def test_cli_peel_flag(self, capsys):
        from repro.cli import main

        code = main([
            "peel", "--n", "2000", "--c", "0.7", "--engine", "shm-parallel",
            "--workers", "2",
        ])
        assert code == 0
        assert "rounds" in capsys.readouterr().out


class TestPartitionBounds:
    def test_covers_everything_contiguously(self):
        for total in (0, 1, 7, 100):
            for parts in (1, 2, 3, 8):
                bounds = partition_bounds(total, parts)
                assert bounds[0] == 0 and bounds[-1] == total
                assert all(lo <= hi for lo, hi in zip(bounds, bounds[1:]))

    def test_near_even(self):
        bounds = partition_bounds(10, 3)
        sizes = [hi - lo for lo, hi in zip(bounds, bounds[1:])]
        assert max(sizes) - min(sizes) <= 1


# Module-level worker functions (the pool pickles them under spawn).

def _crashing_worker(worker_id, num_workers, barrier, timeout, payload):
    barrier.wait(timeout)
    raise RuntimeError("injected worker failure")


def _stalling_worker(worker_id, num_workers, barrier, timeout, payload):
    time.sleep(payload["stall"])
    barrier.wait(timeout)


class TestDeadlockGuard:
    def test_worker_failure_fails_fast(self):
        pool = ShmWorkerPool(2, _crashing_worker, {}, timeout=10.0)
        # The crash aborts the barrier; depending on scheduling the broken
        # barrier can surface on the releasing sync itself or on the next.
        with pytest.raises(ShmPoolError, match="worker process failed|barrier"):
            pool.sync()  # release the workers into their crash
            pool.sync()  # the aborted barrier surfaces by here at the latest
        pool.terminate()

    def test_barrier_timeout_fails_fast(self):
        pool = ShmWorkerPool(1, _stalling_worker, {"stall": 30.0}, timeout=0.5)
        start = time.monotonic()
        with pytest.raises(ShmPoolError, match="deadlock guard"):
            pool.sync()
        assert time.monotonic() - start < 10.0  # fails fast, not after the stall
        pool.terminate()


class TestShmLayout:
    def test_round_trips_named_arrays(self):
        layout = ShmLayout.build([("a", (4,), "int64"), ("b", (2, 3), "uint64")])
        offsets = layout.offsets()
        assert offsets["a"] == 0
        assert offsets["b"] % 64 == 0
        assert layout.total_bytes >= 4 * 8 + 6 * 8

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            ShmLayout.build([("a", (1,), "int64"), ("a", (2,), "int64")])
