"""Streaming set reconciliation against a fixed peer digest.

The contract: a ``StreamingSetReconciler`` fed a live insert/delete stream
must report, at every ``checkpoint()``, exactly the difference sets a
from-scratch ``SetReconciler.reconcile`` of the *current* local set against
the same peer would — while the incremental accounting shows checkpoint
cost scaling with the mutation batch, not the digest size.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.apps.set_reconciliation import (
    SetReconciler,
    StreamingReconciliationResult,
    StreamingSetReconciler,
    random_set_pair,
)
from repro.apps.sparse_recovery import random_distinct_keys
from repro.iblt import IBLT


def canonical(result):
    return (
        sorted(map(int, np.asarray(result.a_minus_b, dtype=np.uint64))),
        sorted(map(int, np.asarray(result.b_minus_a, dtype=np.uint64))),
    )


def scratch(reconciler, local, remote):
    return reconciler.reconcile(local, remote, decoder="flat")


class TestStreamingSetReconciler:
    def test_bootstrap_matches_plain_reconcile(self):
        a, b = random_set_pair(200, 15, 12, seed=1)
        reconciler = SetReconciler(240, 3, seed=4)
        stream = reconciler.streaming(a, reconciler.digest(b))
        first = stream.checkpoint()
        assert isinstance(first, StreamingReconciliationResult)
        assert first.success
        assert first.resumed_from_round == 0
        assert canonical(first) == canonical(scratch(reconciler, a, b))

    def test_mutation_batches_match_from_scratch_at_every_checkpoint(self):
        pool = random_distinct_keys(400, seed=2)
        local = list(map(int, pool[:150]))
        remote = list(map(int, pool[100:260]))
        fresh = list(map(int, pool[260:]))
        reconciler = SetReconciler(300, 3, seed=7)
        remote_digest = reconciler.digest(remote)
        stream = reconciler.streaming(local, remote_digest)
        stream.checkpoint()
        rng = np.random.default_rng(3)
        for _ in range(4):
            inserts = [fresh.pop() for _ in range(5)]
            deletes = [local.pop(int(rng.integers(len(local)))) for _ in range(4)]
            local.extend(inserts)
            stream.apply(inserts=inserts, deletes=deletes)
            got = stream.checkpoint()
            want = scratch(reconciler, local, remote)
            assert got.success == want.success
            assert canonical(got) == canonical(want)

    def test_checkpoint_cost_scales_with_batch_not_digest(self):
        a, b = random_set_pair(2_000, 40, 40, seed=5)
        reconciler = SetReconciler(600, 3, seed=9)
        stream = reconciler.streaming(a, reconciler.digest(b))
        bootstrap = stream.checkpoint()
        extra = random_distinct_keys(3, seed=6)
        stream.apply(inserts=extra)
        incr = stream.checkpoint()
        assert incr.success
        assert incr.resumed_from_round == bootstrap.rounds
        assert incr.rounds_incremental <= bootstrap.rounds

    def test_accepts_serialized_remote_digest(self):
        a, b = random_set_pair(50, 5, 5, seed=8)
        reconciler = SetReconciler(120, 3, seed=2)
        stream = reconciler.streaming(a, reconciler.digest(b).to_bytes())
        assert canonical(stream.checkpoint()) == canonical(scratch(reconciler, a, b))

    def test_delete_never_held_key_lands_in_b_minus_a(self):
        # A local delete of a key only the peer holds deepens b\a — exactly
        # what a from-scratch digest of the mutated local multiset encodes.
        a, b = random_set_pair(60, 4, 4, seed=11)
        reconciler = SetReconciler(120, 3, seed=3)
        stream = reconciler.streaming(a, reconciler.digest(b))
        stream.checkpoint()
        ghost = int(np.setdiff1d(b, a)[0])
        stream.apply(deletes=[ghost])
        got = stream.checkpoint()
        assert canonical(got)[1].count(ghost) == 2

    def test_streaming_factory_returns_streaming_reconciler(self):
        a, b = random_set_pair(30, 3, 3, seed=12)
        reconciler = SetReconciler(60, 3, seed=1)
        stream = reconciler.streaming(a, reconciler.digest(b))
        assert isinstance(stream, StreamingSetReconciler)
        assert stream.reconciler is reconciler
        assert stream.mutations_applied == 0
        stream.apply(inserts=[999], deletes=[998, 997])
        assert stream.mutations_applied == 3

    def test_mismatched_remote_digest_rejected(self):
        reconciler = SetReconciler(120, 3, seed=2)
        wrong_cells = IBLT(60, 3, layout="subtables", seed=2)
        with pytest.raises(ValueError, match="hash family"):
            reconciler.streaming([1, 2, 3], wrong_cells)
        wrong_seed = IBLT(120, 3, layout="subtables", seed=5)
        with pytest.raises(ValueError, match="hash family"):
            reconciler.streaming([1, 2, 3], wrong_seed)

    def test_bytes_exchanged_counts_digest_cells(self):
        reconciler = SetReconciler(120, 3, seed=2)
        a, b = random_set_pair(40, 4, 4, seed=13)
        stream = reconciler.streaming(a, reconciler.digest(b))
        assert stream.checkpoint().bytes_exchanged == 3 * 8 * 120
