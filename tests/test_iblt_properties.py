"""Property-based tests (hypothesis) for the IBLT."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.iblt import IBLT, FlatParallelDecoder, SubtableParallelDecoder

key_sets = st.lists(
    st.integers(min_value=1, max_value=2**62), min_size=0, max_size=60, unique=True
)


class TestRoundTripProperties:
    @given(keys=key_sets, seed=st.integers(min_value=0, max_value=1000))
    @settings(max_examples=50, deadline=None)
    def test_insert_then_delete_is_identity(self, keys, seed):
        table = IBLT(300, 3, seed=seed)
        arr = np.asarray(keys, dtype=np.uint64)
        if arr.size:
            table.insert(arr)
            table.delete(arr)
        assert table.is_empty()

    @given(keys=key_sets, seed=st.integers(min_value=0, max_value=1000))
    @settings(max_examples=50, deadline=None)
    def test_low_load_decoding_recovers_exactly(self, keys, seed):
        # 60 keys in 300 cells is load 0.2, far below every threshold: decode
        # must recover the exact set.
        table = IBLT(300, 3, seed=seed)
        arr = np.asarray(keys, dtype=np.uint64)
        if arr.size:
            table.insert(arr)
        result = table.decode()
        assert result.success
        assert sorted(map(int, result.recovered)) == sorted(keys)

    @given(keys=key_sets, seed=st.integers(min_value=0, max_value=1000))
    @settings(max_examples=50, deadline=None)
    def test_parallel_and_serial_recover_same_set(self, keys, seed):
        table = IBLT(300, 3, seed=seed)
        arr = np.asarray(keys, dtype=np.uint64)
        if arr.size:
            table.insert(arr)
        serial = table.decode()
        parallel = SubtableParallelDecoder().decode(table)
        flat = FlatParallelDecoder().decode(table)
        assert sorted(map(int, serial.recovered)) == sorted(map(int, parallel.recovered))
        assert sorted(map(int, serial.recovered)) == sorted(map(int, flat.recovered))

    @given(
        a_keys=key_sets,
        b_keys=key_sets,
        seed=st.integers(min_value=0, max_value=1000),
    )
    @settings(max_examples=40, deadline=None)
    def test_subtract_recovers_symmetric_difference(self, a_keys, b_keys, seed):
        table_a = IBLT(600, 3, seed=seed)
        table_b = IBLT(600, 3, seed=seed)
        if a_keys:
            table_a.insert(np.asarray(a_keys, dtype=np.uint64))
        if b_keys:
            table_b.insert(np.asarray(b_keys, dtype=np.uint64))
        result = table_a.subtract(table_b).decode()
        assert result.success
        assert sorted(map(int, result.recovered)) == sorted(set(a_keys) - set(b_keys))
        assert sorted(map(int, result.removed)) == sorted(set(b_keys) - set(a_keys))

    @given(keys=key_sets, seed=st.integers(min_value=0, max_value=200))
    @settings(max_examples=30, deadline=None)
    def test_recovered_keys_are_always_genuine(self, keys, seed):
        # Even when decoding fails (overload is impossible here, but the
        # property must hold regardless), nothing is hallucinated.
        table = IBLT(60, 3, seed=seed)
        arr = np.asarray(keys, dtype=np.uint64)
        if arr.size:
            table.insert(arr)
        result = table.decode()
        assert set(map(int, result.recovered)) <= set(keys)

    @given(
        keys=key_sets,
        batch_split=st.integers(min_value=0, max_value=60),
        seed=st.integers(min_value=0, max_value=1000),
    )
    @settings(max_examples=40, deadline=None)
    def test_insertion_order_is_irrelevant(self, keys, batch_split, seed):
        split = min(batch_split, len(keys))
        one = IBLT(300, 3, seed=seed)
        two = IBLT(300, 3, seed=seed)
        arr = np.asarray(keys, dtype=np.uint64)
        if arr.size:
            one.insert(arr)
            if split:
                two.insert(arr[:split])
            if arr.size - split:
                two.insert(arr[split:][::-1])
        assert np.array_equal(one.count, two.count)
        assert np.array_equal(one.key_sum, two.key_sum)
        assert np.array_equal(one.check_sum, two.check_sum)
