"""Tests for k-core computation and verification."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hypergraph import (
    Hypergraph,
    has_empty_kcore,
    kcore,
    kcore_mask,
    kcore_size,
    random_hypergraph,
    reference_kcore_mask,
    verify_kcore,
)


class TestKCoreSmall:
    def test_tiny_graph_core(self, tiny_graph):
        result = kcore(tiny_graph, 2)
        # Edge {0,1,2} is peeled (vertex 0 has degree 1); the other three
        # edges survive on vertices {1,2,3,4}.
        assert result.edge_mask.tolist() == [False, True, True, True]
        assert result.vertex_mask.tolist() == [False, True, True, True, True, False]
        assert result.num_core_vertices == 4
        assert result.num_core_edges == 3
        assert not result.is_empty

    def test_path_graph_empty_core(self, path_like_graph):
        result = kcore(path_like_graph, 2)
        assert result.is_empty
        assert result.num_core_edges == 0
        assert not result.vertex_mask.any()

    def test_k1_core_keeps_all_edges(self, tiny_graph):
        result = kcore(tiny_graph, 1)
        assert result.edge_mask.all()
        # Vertex 5 is isolated, hence not in the 1-core.
        assert not result.vertex_mask[5]

    def test_large_k_empties_everything(self, tiny_graph):
        result = kcore(tiny_graph, 10)
        assert result.is_empty
        assert not result.vertex_mask.any()

    def test_empty_graph(self):
        graph = Hypergraph(4, np.empty((0, 3), dtype=np.int64))
        result = kcore(graph, 2)
        assert result.is_empty
        assert result.num_core_vertices == 0

    def test_k_must_be_positive(self, tiny_graph):
        with pytest.raises((ValueError, TypeError)):
            kcore(tiny_graph, 0)

    def test_kcore_mask_matches_result(self, tiny_graph):
        assert np.array_equal(kcore_mask(tiny_graph, 2), kcore(tiny_graph, 2).vertex_mask)

    def test_kcore_size(self, tiny_graph):
        assert kcore_size(tiny_graph, 2) == (4, 3)

    def test_has_empty_kcore(self, tiny_graph, path_like_graph):
        assert not has_empty_kcore(tiny_graph, 2)
        assert has_empty_kcore(path_like_graph, 2)

    def test_duplicate_vertex_edge(self):
        # One edge with a repeated vertex: that vertex has degree 2 from a
        # single edge but its partner has degree 1, so the 2-core is empty.
        graph = Hypergraph(3, [[0, 0, 1]], allow_duplicate_vertices=True)
        assert has_empty_kcore(graph, 2)


class TestVerifyKcore:
    def test_valid_result_verifies(self, tiny_graph):
        assert verify_kcore(tiny_graph, 2, kcore(tiny_graph, 2))

    def test_tampered_edge_mask_fails(self, tiny_graph):
        result = kcore(tiny_graph, 2)
        bad = type(result)(
            vertex_mask=result.vertex_mask,
            edge_mask=np.zeros_like(result.edge_mask),
            k=result.k,
        )
        assert not verify_kcore(tiny_graph, 2, bad)

    def test_tampered_vertex_mask_fails(self, tiny_graph):
        result = kcore(tiny_graph, 2)
        vm = result.vertex_mask.copy()
        vm[0] = True
        bad = type(result)(vertex_mask=vm, edge_mask=result.edge_mask, k=result.k)
        assert not verify_kcore(tiny_graph, 2, bad)

    def test_wrong_shape_fails(self, tiny_graph):
        result = kcore(tiny_graph, 2)
        bad = type(result)(
            vertex_mask=result.vertex_mask[:-1], edge_mask=result.edge_mask, k=result.k
        )
        assert not verify_kcore(tiny_graph, 2, bad)


class TestAgainstReference:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    @pytest.mark.parametrize("k", [2, 3])
    def test_matches_reference_on_random_graphs(self, seed, k):
        graph = random_hypergraph(120, 1.2, 3, seed=seed)
        fast = kcore(graph, k).vertex_mask
        slow = reference_kcore_mask(graph, k)
        assert np.array_equal(fast, slow)

    @given(
        n=st.integers(min_value=5, max_value=60),
        m=st.integers(min_value=0, max_value=80),
        r=st.integers(min_value=2, max_value=4),
        k=st.integers(min_value=2, max_value=4),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=40, deadline=None)
    def test_property_matches_reference(self, n, m, r, k, seed):
        if r > n:
            return
        graph = random_hypergraph(n, 1.0, r, num_edges=m, seed=seed)
        fast = kcore(graph, k)
        slow = reference_kcore_mask(graph, k)
        assert np.array_equal(fast.vertex_mask, slow)
        assert verify_kcore(graph, k, fast)

    def test_density_monotonicity(self):
        # Adding edges can only grow the k-core edge count statistically; we
        # check the specific nested construction where the first m edges are
        # shared, so the core of the smaller graph is a subset of the larger.
        big = random_hypergraph(200, 1.5, 3, seed=11)
        small = big.subgraph_of_edges(np.arange(big.num_edges) < 150)
        core_small = kcore(small, 2)
        core_big = kcore(big, 2)
        surviving_small = set(np.flatnonzero(core_small.edge_mask).tolist())
        surviving_big = set(np.flatnonzero(core_big.edge_mask).tolist())
        assert surviving_small <= surviving_big
