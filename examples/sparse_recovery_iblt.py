#!/usr/bin/env python3
"""Sparse recovery with an IBLT, serial vs. parallel recovery (Section 6).

Scenario (the paper's motivating application): a stream inserts N = 500,000
items into a set and later deletes all but n = 20,000 of them.  We want to
recover the surviving set exactly using memory proportional to n, not N.

The example builds an IBLT with ~1.33 n cells (load ≈ 0.75, safely below the
r=3 threshold c*_{2,3} ≈ 0.818), streams the insertions and deletions
through it, then recovers the survivors three ways:

* the classical serial worklist decoder,
* the paper's round-synchronous subtable decoder,
* the flat (whole-table, dedup) decoder,

and prices the serial vs. parallel recovery on the simulated parallel
machine, reproducing the shape of Table 3.

Run with:  python examples/sparse_recovery_iblt.py
"""

from __future__ import annotations

import time


from repro import ParallelMachine
from repro.apps import SparseRecovery, random_distinct_keys
from repro.utils.tables import Table, format_float


def main() -> None:
    stream_length = 500_000
    survivors = 20_000
    r = 3
    num_cells = 26_667 - (26_667 % r)  # ≈ 1.33 * survivors, load ≈ 0.75

    print(f"Stream of {stream_length:,} insertions, {stream_length - survivors:,} deletions")
    print(f"IBLT: {num_cells:,} cells, r={r} (load {survivors / num_cells:.3f})\n")

    keys = random_distinct_keys(stream_length, seed=7)
    surviving_keys = keys[:survivors]
    deleted_keys = keys[survivors:]

    pipeline = SparseRecovery(num_cells=num_cells, r=r, seed=11)
    start = time.perf_counter()
    table = pipeline.build_table(keys, deleted_keys)
    build_seconds = time.perf_counter() - start
    print(f"built table in {build_seconds:.2f}s "
          f"({(2 * stream_length - survivors) / build_seconds:,.0f} updates/s)\n")

    results = Table(
        ["decoder", "success", "recovered", "rounds", "wall-clock (s)"],
        title="Recovery results",
    )
    timings = {}
    for name, decoder in [
        ("serial worklist", "serial"),
        ("parallel (subtables)", "subtable"),
        ("parallel (flat + dedup)", "flat"),
    ]:
        start = time.perf_counter()
        outcome = pipeline.recover(table, surviving_keys, decoder=decoder)
        elapsed = time.perf_counter() - start
        timings[name] = elapsed
        results.add_row(
            name,
            str(outcome.success),
            f"{outcome.fraction_recovered:.1%}",
            outcome.rounds,
            format_float(elapsed, 3),
        )
    print(results.render())

    # Cost-model comparison (the Table 3 stand-in for the paper's GPU).
    machine = ParallelMachine(num_threads=4096)
    parallel_result = table.decode(decoder="subtable")
    recovery = machine.time_recovery(
        parallel_result.round_stats,
        num_cells=num_cells,
        edge_size=r,
        conflict_depths=parallel_result.conflict_depths,
    )
    insert = machine.time_insertions(survivors, r)
    print("\nSimulated parallel machine (4096 threads, arbitrary time units):")
    print(f"  recovery: parallel {recovery.parallel_time:,.0f} vs serial {recovery.serial_time:,.0f} "
          f"-> speedup {recovery.speedup:.1f}x over {recovery.rounds} rounds")
    print(f"  insertion: speedup {insert.speedup:.1f}x")
    print("\n(The paper's Tesla C2070 reports ~19x recovery and ~10-12x insertion "
          "speedups at this load; the shape, not the absolute numbers, is the claim.)")


if __name__ == "__main__":
    main()
