#!/usr/bin/env python3
"""Explore thresholds, round complexity and the near-threshold plateau.

This example reproduces the analytical side of the paper end to end:

* thresholds c*_{k,r} for a grid of (k, r) (Equation 2.1);
* the Theorem 1 / Theorem 7 leading constants and the subround ratio;
* the evolution of the idealized recurrence below, near and above the
  threshold (the content of Figure 1 and Theorem 5), rendered as an ASCII
  sparkline so it can be eyeballed without matplotlib.

Run with:  python examples/threshold_explorer.py
"""

from __future__ import annotations

import math

from repro.analysis import (
    fibonacci_growth_rate,
    iterate_recurrence,
    peeling_threshold,
)
from repro.analysis.fibonacci import subtable_round_ratio
from repro.analysis.rounds import leading_constant_below, leading_constant_subtables
from repro.analysis.threshold_gap import critical_point, plateau_length
from repro.utils.tables import Table, format_float

SPARK = " .:-=+*#%@"


def sparkline(values, width: int = 70) -> str:
    """Render a sequence in [0, max] as a one-line ASCII sparkline."""
    if len(values) > width:
        step = len(values) / width
        values = [values[int(i * step)] for i in range(width)]
    top = max(values) or 1.0
    chars = [SPARK[min(int(v / top * (len(SPARK) - 1)), len(SPARK) - 1)] for v in values]
    return "".join(chars)


def main() -> None:
    # Threshold grid.
    table = Table(["k \\ r"] + [str(r) for r in range(3, 8)],
                  title="Peeling thresholds c*_{k,r} (Equation 2.1)")
    for k in range(2, 6):
        row = [str(k)]
        for r in range(3, 8):
            row.append(format_float(peeling_threshold(k, r), 4))
        table.add_row(*row)
    print(table.render())
    print()

    # Round-complexity constants.
    constants = Table(
        ["k", "r", "1/log((k-1)(r-1))", "1/(log phi_(r-1)+log(k-1))", "subround ratio"],
        title="Theorem 1 and Theorem 7 constants",
    )
    for k, r in [(2, 3), (2, 4), (2, 5), (3, 3), (3, 4)]:
        constants.add_row(
            k, r,
            format_float(leading_constant_below(k, r), 4),
            format_float(leading_constant_subtables(k, r), 4),
            format_float(subtable_round_ratio(k, r), 4),
        )
    print(constants.render())
    print(f"\nphi_2={fibonacci_growth_rate(2):.4f}, phi_3={fibonacci_growth_rate(3):.4f}, "
          f"phi_4={fibonacci_growth_rate(4):.4f}\n")

    # Figure 1: beta evolution near the threshold for k=2, r=4.
    k, r = 2, 4
    c_star = peeling_threshold(k, r)
    x_star = critical_point(k, r)
    print(f"k={k}, r={r}: c* = {c_star:.5f}, critical point x* = {x_star:.4f}")
    for c in (0.70, 0.76, 0.77, 0.772):
        trace = iterate_recurrence(c, k, r, 400)
        beta = [b for b in trace.beta[1:] if b > 1e-12]
        gap = plateau_length(c, k, r)
        print(f"\nc = {c:<6} (nu = {c_star - c:.5f}) — {len(beta)} rounds to extinction, "
              f"plateau {gap.plateau_rounds} rounds, sqrt(1/nu) = {math.sqrt(1/(c_star-c)):.1f}")
        print("  beta_i: " + sparkline(beta))

    print("\nThe lengthening flat stretch as c approaches c* is the Θ(sqrt(1/ν)) "
          "plateau of Theorem 5 (the paper's Figure 1).")


if __name__ == "__main__":
    main()
