#!/usr/bin/env python3
"""Set reconciliation across a link with IBLT difference digests.

Scenario: two replicas each hold about one million keys that agree except
for a few hundred recent writes on either side.  Instead of exchanging the
full key sets (16 MB), each side sends a fixed-size IBLT digest sized for the
*difference*; subtracting the digests and peeling the result yields exactly
the keys each side is missing.

The example measures the communication cost, verifies correctness, and shows
how the number of peeling rounds (the latency of a parallel decoder) stays
tiny because the difference digest operates far below the peeling threshold.

Run with:  python examples/set_reconciliation.py
"""

from __future__ import annotations

import time

from repro.apps import SetReconciler, random_set_pair
from repro.utils.tables import Table, format_float


def main() -> None:
    common = 1_000_000
    only_a = 180
    only_b = 240
    expected_difference = only_a + only_b

    # Size the digest for the difference with ~40% headroom below the r=3
    # threshold c*_{2,3} ≈ 0.818 (i.e. cells ≈ 1.75 * d).
    num_cells = 735  # 420 * 1.75
    num_cells -= num_cells % 3

    print(f"Replica A: {common + only_a:,} keys, replica B: {common + only_b:,} keys")
    print(f"True difference: {expected_difference} keys")
    print(f"Digest: {num_cells} cells x 24 bytes = {num_cells * 24:,} bytes "
          f"(vs ~{(common + only_a) * 8 / 1e6:.0f} MB to ship the full set)\n")

    set_a, set_b = random_set_pair(common, only_a, only_b, seed=3)
    reconciler = SetReconciler(num_cells=num_cells, r=3, seed=9)

    table = Table(
        ["decoder", "success", "|A\\B|", "|B\\A|", "rounds", "wall-clock (s)"],
        title="Reconciliation",
    )
    for decoder in ("serial", "subtable"):
        start = time.perf_counter()
        result = reconciler.reconcile(set_a, set_b, decoder=decoder)
        elapsed = time.perf_counter() - start
        table.add_row(
            decoder,
            str(result.success),
            result.a_minus_b.size,
            result.b_minus_a.size,
            result.rounds,
            format_float(elapsed, 3),
        )
    print(table.render())
    print(f"\nbytes exchanged per direction: {result.bytes_exchanged:,}")

    # What happens if the digest is undersized?  The difference hypergraph is
    # then above the peeling threshold and listing fails — detectable, so the
    # protocol can fall back to a larger digest.
    tiny = SetReconciler(num_cells=max(3, (expected_difference // 2) // 3 * 3), r=3, seed=9)
    failed = tiny.reconcile(set_a, set_b)
    print(f"\nUndersized digest ({tiny.num_cells} cells): success={failed.success} "
          f"(recovered {failed.a_minus_b.size + failed.b_minus_a.size} of {expected_difference}) "
          "- the failure is detected and a larger digest can be retried.")


if __name__ == "__main__":
    main()
