#!/usr/bin/env python3
"""A peeling-decoded erasure code over a lossy channel (Section 6's coding analogy).

Each of M message symbols is XORed into r=3 of the m encoded symbols; the
receiver loses a fraction of the encoded symbols and decodes by peeling.
Decoding succeeds exactly when the residual 2-core is empty, so the
tolerable loss rate is governed by the peeling threshold: with M message
symbols and m received symbols, decoding works w.h.p. while
M / (received symbols) stays below c*_{2,3} ≈ 0.818.

The example sweeps the channel loss rate and reports the decoded fraction
and the number of parallel peeling rounds, showing the sharp threshold and
the O(log log n) round count below it.

Run with:  python examples/erasure_code.py
"""

from __future__ import annotations

import numpy as np

from repro.analysis import peeling_threshold
from repro.apps import PeelingErasureCode, random_distinct_keys
from repro.utils.tables import Table, format_float


def main() -> None:
    num_message = 50_000
    overhead = 1.45
    num_encoded = int(num_message * overhead)
    r = 3
    code = PeelingErasureCode(num_encoded=num_encoded, r=r, seed=21)
    c_star = peeling_threshold(2, r)

    print(f"Message symbols: {num_message:,}; encoded symbols: {num_encoded:,} "
          f"(rate {num_message / num_encoded:.2f})")
    print(f"Peeling threshold c*_{{2,{r}}} = {c_star:.3f}; the effective density "
          f"(message symbols per received encoded symbol) crosses it at a loss rate "
          f"of ~{1 - num_message / (c_star * num_encoded):.1%}.")
    print("(Erasures also truncate edges — a symbol that loses some of its r copies is\n"
          " harder to peel — so full recovery degrades somewhat before that point.)\n")

    message = random_distinct_keys(num_message, seed=22)
    block = code.encode(message)

    rng = np.random.default_rng(23)
    table = Table(
        ["loss rate", "effective density", "decoded fraction", "success", "rounds"],
        title="Peeling erasure code vs channel loss",
    )
    for loss in (0.0, 0.05, 0.10, 0.15, 0.20, 0.25, 0.30, 0.35):
        received = rng.random(num_encoded) >= loss
        outcome = code.decode(block, received, mode="parallel")
        effective_density = num_message / max(int(received.sum()), 1)
        table.add_row(
            format_float(loss, 2),
            format_float(effective_density, 3),
            f"{outcome.fraction_recovered:.1%}",
            str(outcome.success),
            outcome.rounds,
        )
    print(table.render())
    print("\nNote the sharp transition once the effective density "
          "(message symbols per received encoded symbol) crosses the threshold, "
          "and the small, nearly constant round counts below it (Theorem 1).")


if __name__ == "__main__":
    main()
