#!/usr/bin/env python3
"""Quickstart: peel a random hypergraph and compare against the theory.

This example walks through the paper's core objects in a few lines:

1. compute the load threshold c*_{k,r} (Equation 2.1);
2. sample a random 4-uniform hypergraph below and above the threshold;
3. run the round-synchronous parallel peeling process on both;
4. compare the measured round counts and per-round survivors against the
   idealized recurrence (Section 3.1) and the Theorem 1 / Theorem 3
   predictions.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

import math

from repro import (
    iterate_recurrence,
    peel,
    peeling_threshold,
    predict_rounds,
    predicted_survivors,
    random_hypergraph,
)
from repro.analysis.rounds import leading_constant_below
from repro.utils.tables import Table, format_float, format_int


def main() -> None:
    k, r, n = 2, 4, 200_000
    c_star = peeling_threshold(k, r)
    print(f"Peeling threshold c*_{{{k},{r}}} = {c_star:.5f}")
    print(f"Theorem 1 leading constant 1/log((k-1)(r-1)) = {leading_constant_below(k, r):.4f}")
    print(f"log log n for n={n}: {math.log(math.log(n)):.3f}\n")

    for c, label in [(0.70, "below threshold"), (0.85, "above threshold")]:
        print(f"=== c = {c} ({label}) ===")
        graph = random_hypergraph(n, c, r, seed=42)
        result = peel(graph, "parallel", k=k)
        prediction = predict_rounds(n, c, k, r)
        print(f"peeled to {'empty' if result.success else 'NON-empty'} {k}-core "
              f"in {result.num_rounds} rounds "
              f"(recurrence prediction: {prediction.rounds:.0f}, regime: {prediction.regime})")
        if not result.success:
            print(f"k-core size: {result.core_size} edges "
                  f"({result.core_size / graph.num_edges:.1%} of edges)")

        # Per-round survivors vs the idealized recurrence (Table 2 style).
        rounds_to_show = min(result.num_rounds, 8)
        predicted = predicted_survivors(n, c, k, r, rounds_to_show)
        table = Table(["round", "measured survivors", "recurrence prediction"],
                      title="Survivors per round (first rounds)")
        for t in range(1, rounds_to_show + 1):
            table.add_row(
                format_int(t),
                format_int(result.survivors_after_round(t)),
                format_float(predicted[t - 1], 1),
            )
        print(table.render())
        print()

    # The asymmetry the paper highlights: the empty core (the case
    # applications care about) is found exponentially faster.
    trace = iterate_recurrence(0.70, k, r, 50)
    print("Idealized survival probabilities lambda_t at c=0.70 (note the doubly "
          "exponential collapse):")
    print("  " + ", ".join(f"{v:.2e}" for v in trace.lam[1:15]))


if __name__ == "__main__":
    main()
