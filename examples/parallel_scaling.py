#!/usr/bin/env python3
"""Round scaling of parallel peeling: O(log log n) below vs Ω(log n) above.

This example measures, on real random hypergraphs, the quantity at the heart
of the paper: how the number of parallel peeling rounds grows with n on both
sides of the threshold, and how the simulated parallel machine translates
that into end-to-end speedup over the serial baseline.

Run with:  python examples/parallel_scaling.py          (quick, ~30s)
           python examples/parallel_scaling.py --full   (larger sweep)
"""

from __future__ import annotations

import math
import sys

from repro import ParallelMachine, peel, peel_many, random_hypergraph
from repro.analysis import peeling_threshold, rounds_below_threshold
from repro.utils.tables import Table, format_float


def main() -> None:
    full = "--full" in sys.argv
    k, r = 2, 4
    c_star = peeling_threshold(k, r)
    sizes = [10_000, 40_000, 160_000, 640_000] if full else [10_000, 40_000, 160_000]
    densities = [0.70, 0.85]
    trials = 3

    machine = ParallelMachine(num_threads=4096)
    print(f"k={k}, r={r}, threshold c* = {c_star:.4f}; {trials} trials per point\n")

    for c in densities:
        regime = "below" if c < c_star else "above"
        table = Table(
            ["n", "log log n", "log n", "avg rounds", "Theorem-1 leading term", "simulated speedup"],
            title=f"c = {c} ({regime} threshold)",
        )
        for n in sizes:
            graphs = [random_hypergraph(n, c, r, seed=1000 * trial + n) for trial in range(trials)]
            # Batched front door: one call peels every trial graph, dispatched
            # over the thread-pool backend.
            results = peel_many(graphs, "parallel", k=k, backend="threads", max_workers=trials)
            rounds = [result.num_rounds for result in results]
            speedups = [
                machine.time_recovery(result, num_cells=n, edge_size=r).speedup
                for result in results
            ]
            leading = rounds_below_threshold(n, k, r) if c < c_star else float("nan")
            table.add_row(
                n,
                format_float(math.log(math.log(n)), 2),
                format_float(math.log(n), 2),
                format_float(sum(rounds) / len(rounds), 2),
                format_float(leading, 2) if c < c_star else "-",
                format_float(sum(speedups) / len(speedups), 1) + "x",
            )
        print(table.render())
        print()

    print("Below the threshold the round count tracks log log n (it barely moves "
          "across a 16-64x range of n) while above the threshold it tracks log n; "
          "correspondingly the parallel speedup is larger below the threshold, the "
          "asymmetry Section 1 calls 'particularly fortuitous'.")

    # Real intra-trial parallelism: the same process on OS workers sharing
    # one zero-copy state segment ('repro bench' times it properly).
    import os
    import time

    n = sizes[-1]
    graph = random_hypergraph(n, densities[0], r, seed=7)
    workers = max(2, min(os.cpu_count() or 1, 4))
    timings = {}
    for engine, opts in (("parallel", {}), ("shm-parallel", {"num_workers": workers})):
        start = time.perf_counter()
        result = peel(graph, engine, k=k, **opts)
        timings[engine] = time.perf_counter() - start
        rounds = result.num_rounds
    print(f"\nOne n={n} peel ({rounds} rounds): serial numpy {timings['parallel']:.3f}s, "
          f"shm-parallel[{workers} workers] {timings['shm-parallel']:.3f}s "
          f"(wins only with multiple physical cores and large n).")


if __name__ == "__main__":
    main()
