"""Extension benchmark: round-count scaling laws (Theorems 1 and 3) in one plot.

Not a numbered table in the paper, but the content of its headline theorems:
below the threshold the measured rounds should correlate with ``log log n``
(a fitted slope against ``log n`` of essentially zero), above the threshold
they should grow linearly in ``log n`` (a clearly positive slope).  The paper
demonstrates this qualitatively via Table 1; this benchmark fits the slopes
explicitly so regressions in either engine or generator show up as a number.
"""

from __future__ import annotations

import math

import pytest

from repro.experiments import run_table1


def _sizes(scale: str):
    if scale == "paper":
        return (10_000, 40_000, 160_000, 640_000, 2_560_000)
    return (5_000, 20_000, 80_000)


def _fit_slope(xs, ys) -> float:
    n = len(xs)
    mean_x = sum(xs) / n
    mean_y = sum(ys) / n
    denom = sum((x - mean_x) ** 2 for x in xs)
    return sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys)) / denom


@pytest.mark.benchmark(group="scaling")
def test_round_scaling_below_vs_above(benchmark, record_table, scale):
    sizes = _sizes(scale)
    trials = 50 if scale == "paper" else 8

    def sweep():
        below = run_table1(sizes=sizes, densities=(0.7,), trials=trials, seed=41)
        above = run_table1(sizes=sizes, densities=(0.85,), trials=trials, seed=43)
        return below, above

    below, above = benchmark.pedantic(sweep, rounds=1, iterations=1)

    log_n = [math.log(row.n) for row in below]
    below_rounds = [row.avg_rounds for row in below]
    above_rounds = [row.avg_rounds for row in above]
    slope_below = _fit_slope(log_n, below_rounds)
    slope_above = _fit_slope(log_n, above_rounds)

    lines = ["Round scaling vs log n (k=2, r=4)",
             f"  {'n':>9}  {'rounds c=0.70':>14}  {'rounds c=0.85':>14}"]
    for b, a in zip(below, above):
        lines.append(f"  {b.n:>9}  {b.avg_rounds:>14.3f}  {a.avg_rounds:>14.3f}")
    lines.append(f"  fitted d(rounds)/d(log n): below = {slope_below:.3f}, above = {slope_above:.3f}")
    lines.append("  Theorem 1 predicts ~0 below the threshold; Theorem 3 predicts a "
                 "positive constant above it.")
    record_table("round_scaling", "\n".join(lines))

    # Below the threshold the rounds are essentially flat in log n ...
    assert abs(slope_below) < 0.35
    # ... while above it they grow clearly (paper Table 1: roughly +1.1 rounds
    # per doubling of n, i.e. slope ≈ 1.6 in natural log).
    assert slope_above > 0.5
    assert slope_above > 3 * abs(slope_below)
