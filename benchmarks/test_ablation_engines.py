"""Ablation benchmarks for the design choices called out in DESIGN.md.

1. Full-scan vs frontier update in the parallel peeler: identical results,
   very different work (the paper's GPU does full scans; a work-efficient
   CPU implementation would use the frontier).
2. Subtable decoding vs flat decoding with global deduplication: both avoid
   the double-peel hazard; subtables need fewer full rounds.
3. Atomic-conflict serialization on/off in the cost model: changes constants,
   never who wins.
4. Raw engine throughput (edges peeled per second) for the three engines —
   the number a downstream user sizing a deployment cares about.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.apps.sparse_recovery import random_distinct_keys
from repro.core import ParallelPeeler, SequentialPeeler, SubtablePeeler
from repro.hypergraph import partitioned_hypergraph, random_hypergraph
from repro.iblt import IBLT, FlatParallelDecoder, SubtableParallelDecoder
from repro.parallel import ParallelMachine


def _graph_size(scale: str) -> int:
    return 400_000 if scale == "paper" else 60_000


@pytest.mark.benchmark(group="ablation-update-mode")
def test_ablation_full_vs_frontier_update(benchmark, record_table, scale):
    n = _graph_size(scale)
    graph = random_hypergraph(n, 0.7, 4, seed=23)

    def run_both():
        full = ParallelPeeler(2, update="full").peel(graph)
        frontier = ParallelPeeler(2, update="frontier").peel(graph)
        return full, frontier

    full, frontier = benchmark.pedantic(run_both, rounds=1, iterations=1)
    record_table(
        "ablation_update_mode",
        "Full-scan vs frontier update (n={}, c=0.7, r=4, k=2)\n"
        "  rounds     : full={}  frontier={}\n"
        "  total work : full={}  frontier={}  (ratio {:.2f}x)".format(
            n, full.num_rounds, frontier.num_rounds,
            full.total_work, frontier.total_work,
            full.total_work / max(frontier.total_work, 1),
        ),
    )
    assert full.num_rounds == frontier.num_rounds
    assert np.array_equal(full.core_edge_mask, frontier.core_edge_mask)
    # Full scans re-inspect every cell each round: strictly more work.
    assert full.total_work > 1.5 * frontier.total_work


@pytest.mark.benchmark(group="ablation-dedup")
def test_ablation_subtable_vs_flat_decoder(benchmark, record_table, scale):
    num_cells = 120_000 if scale == "paper" else 30_000
    table = IBLT(num_cells, 3, seed=29)
    table.insert(random_distinct_keys(int(0.75 * num_cells), seed=29))

    def run_both():
        sub = SubtableParallelDecoder().decode(table)
        flat = FlatParallelDecoder().decode(table)
        return sub, flat

    sub, flat = benchmark.pedantic(run_both, rounds=1, iterations=1)
    record_table(
        "ablation_decoder",
        "Subtable vs flat (dedup) parallel decoding (cells={}, load 0.75, r=3)\n"
        "  subtable: rounds={}  subrounds={}  success={}\n"
        "  flat    : rounds={}  success={}".format(
            num_cells, sub.rounds, sub.subrounds, sub.success, flat.rounds, flat.success
        ),
    )
    assert sub.success and flat.success
    assert sorted(map(int, sub.recovered)) == sorted(map(int, flat.recovered))
    # Appendix B: subtables need no more full rounds than the flat scheme.
    assert sub.rounds <= flat.rounds
    # ... and fewer subrounds than the naive r * flat-rounds bound.
    assert sub.subrounds < 3 * flat.rounds


@pytest.mark.benchmark(group="ablation-conflicts")
def test_ablation_atomic_conflict_costs(benchmark, record_table, scale):
    num_cells = 120_000 if scale == "paper" else 30_000
    table = IBLT(num_cells, 3, seed=31)
    table.insert(random_distinct_keys(int(0.75 * num_cells), seed=31))

    def run():
        return SubtableParallelDecoder(track_conflicts=True).decode(table)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    machine = ParallelMachine(num_threads=4096)
    with_conflicts = machine.time_recovery(
        result.round_stats, num_cells=num_cells, edge_size=3,
        conflict_depths=result.conflict_depths,
    )
    without_conflicts = machine.time_recovery(
        result.round_stats, num_cells=num_cells, edge_size=3, conflict_depths=None
    )
    record_table(
        "ablation_conflicts",
        "Atomic-conflict serialization in the cost model (cells={}, load 0.75)\n"
        "  max conflict depth observed : {}\n"
        "  speedup with conflicts      : {:.2f}x\n"
        "  speedup without conflicts   : {:.2f}x".format(
            num_cells, max(result.conflict_depths, default=0),
            with_conflicts.speedup, without_conflicts.speedup,
        ),
    )
    # Conflicts only add constants; the parallel machine still wins either way.
    assert with_conflicts.speedup > 1.0
    assert without_conflicts.speedup >= with_conflicts.speedup


@pytest.mark.benchmark(group="engine-throughput")
@pytest.mark.parametrize("engine", ["parallel", "sequential", "subtable"])
def test_engine_throughput(benchmark, engine, scale):
    """Raw wall-clock throughput of each engine (edges peeled per run)."""
    n = _graph_size(scale)
    if engine == "subtable":
        graph = partitioned_hypergraph(n, 0.7, 4, seed=37)
        peeler = SubtablePeeler(2, track_stats=False)
    else:
        graph = random_hypergraph(n, 0.7, 4, seed=37)
        peeler = (
            ParallelPeeler(2, track_stats=False)
            if engine == "parallel"
            else SequentialPeeler(2, track_stats=False)
        )

    result = benchmark(lambda: peeler.peel(graph))
    assert result.success
