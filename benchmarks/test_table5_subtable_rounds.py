"""Benchmark: regenerate Table 5 (subtable peeling subrounds) + Theorem 7 ablation.

Paper reference (r=4, k=2, 1000 trials): at c=0.7 the average number of
subrounds grows from 26.0 (n=10k) to 27.0 (n=2.56M); at c=0.75 from 47.7 to
48.2.  Comparing with Table 1, the subround count is about 2× the plain
parallel round count — far below the naive factor r=4 — matching the
Fibonacci-exponential analysis of Theorem 7 (ratio
log((k−1)(r−1)) / (log φ_{r−1} + log(k−1)) ≈ 1.8 for k=2, r=4).
"""

from __future__ import annotations

import pytest

from repro.analysis import fibonacci_growth_rate
from repro.analysis.fibonacci import subtable_round_ratio
from repro.experiments import PAPER_SIZES, format_table5, run_table1, run_table5


def _parameters(scale: str):
    if scale == "paper":
        return dict(sizes=PAPER_SIZES, trials=1000)
    return dict(sizes=(10_000, 20_000, 40_000, 80_000), trials=10)


@pytest.mark.benchmark(group="table5")
def test_table5_subtable_rounds(benchmark, record_table, scale):
    params = _parameters(scale)

    rows = benchmark.pedantic(
        lambda: run_table5(densities=(0.7, 0.75), seed=13, **params),
        rounds=1,
        iterations=1,
    )
    record_table("table5", format_table5(rows))

    by_density = {}
    for row in rows:
        by_density.setdefault(row.c, []).append(row)
    for c, cells in by_density.items():
        cells.sort(key=lambda row: row.n)
        # Below the threshold: every trial succeeds, subrounds are ~flat in n.
        assert all(cell.failed == 0 for cell in cells)
        assert cells[-1].avg_subrounds - cells[0].avg_subrounds <= 4.0
        # Subrounds stay well below r=4 times the full-round count.
        for cell in cells:
            assert cell.avg_subrounds <= 4 * cell.avg_rounds
    # c=0.75 sits closer to the threshold, so it needs more subrounds than
    # c=0.7 (paper: ~48 vs ~26).
    assert by_density[0.75][0].avg_subrounds > by_density[0.7][0].avg_subrounds


@pytest.mark.benchmark(group="table5")
def test_theorem7_subround_ratio_ablation(benchmark, record_table, scale):
    """Ablation: measured subround/round ratio vs the Theorem 7 prediction.

    The paper observes a factor of about 2 between Table 5 subrounds and
    Table 1 rounds at the same (n, c); Theorem 7 predicts the asymptotic
    ratio log((k−1)(r−1)) / (log φ_{r−1} + log(k−1)) ≈ 1.80 for k=2, r=4.
    """
    if scale == "paper":
        n, trials = 1_280_000, 100
    else:
        n, trials = 40_000, 10

    def measure():
        table5 = run_table5(sizes=(n,), densities=(0.7,), trials=trials, seed=17)[0]
        table1 = run_table1(sizes=(n,), densities=(0.7,), trials=trials, seed=17)[0]
        return table5, table1

    table5, table1 = benchmark.pedantic(measure, rounds=1, iterations=1)
    measured_ratio = table5.avg_subrounds / table1.avg_rounds
    predicted_ratio = subtable_round_ratio(2, 4)
    phi3 = fibonacci_growth_rate(3)

    record_table(
        "table5_theorem7_ablation",
        "Theorem 7 ablation (k=2, r=4, c=0.7, n={}):\n"
        "  measured subrounds            : {:.3f}\n"
        "  measured plain rounds         : {:.3f}\n"
        "  measured subround/round ratio : {:.3f}\n"
        "  Theorem 7 predicted ratio     : {:.3f}  (phi_3 = {:.3f})\n"
        "  naive worst-case ratio        : 4.000".format(
            n, table5.avg_subrounds, table1.avg_rounds, measured_ratio,
            predicted_ratio, phi3,
        ),
    )

    # The measured ratio must sit near the paper's observed ~2, bounded well
    # away from the naive factor 4 and not below 1.
    assert 1.2 < measured_ratio < 3.0
    assert measured_ratio < 4.0
    assert predicted_ratio == pytest.approx(1.80, abs=0.1)
