"""Benchmark: regenerate Table 4 (IBLT with r=4 hash functions).

Paper reference (2^24 cells): at load 0.75 (below c*_{2,4} ≈ 0.772) recovery
is complete and the GPU is ~18× faster than serial (0.47s vs 8.37s); at load
0.83 (well above the threshold) only 24.6% of items are recovered and the
speedup drops to ~9× (0.25s vs 2.28s).  Note the r=4 above-threshold recovery
fraction is much lower than the r=3 one (24.6% vs 50.1%) because 0.83 sits
further beyond the r=4 threshold.
"""

from __future__ import annotations

import pytest

from repro.experiments import format_table34, run_table34
from repro.parallel import ParallelMachine


def _parameters(scale: str):
    if scale == "paper":
        return dict(num_cells=16_777_216)
    return dict(num_cells=30_000)


@pytest.mark.benchmark(group="table4")
def test_table4_iblt_r4(benchmark, record_table, scale):
    params = _parameters(scale)
    machine = ParallelMachine(num_threads=4096)

    rows = benchmark.pedantic(
        lambda: run_table34(4, loads=(0.75, 0.83), machine=machine, seed=7, **params),
        rounds=1,
        iterations=1,
    )
    record_table("table4_r4", format_table34(rows))

    below, above = rows
    # Load 0.75 < c*_{2,4} ≈ 0.772: full recovery.
    assert below.fraction_recovered == pytest.approx(1.0)
    # Load 0.83 > threshold: small recovered fraction (paper: 24.6%).
    assert above.fraction_recovered < 0.5

    # Who-wins shape: parallel always wins, by less above the threshold.
    assert below.recovery_speedup > 1.5
    assert above.recovery_speedup < below.recovery_speedup

    # Insertion speedups are load-insensitive.
    assert below.insert_speedup == pytest.approx(above.insert_speedup, rel=0.25)


@pytest.mark.benchmark(group="table4")
def test_table34_r4_vs_r3_above_threshold(benchmark, record_table, scale):
    """Cross-table check: at load 0.83, r=4 recovers less than r=3.

    This is the paper's 50.1% (Table 3) vs 24.6% (Table 4) contrast; the same
    load sits further above the r=4 threshold than the r=3 one.
    """
    params = _parameters(scale)
    machine = ParallelMachine(num_threads=4096)

    def run_both():
        r3 = run_table34(3, loads=(0.83,), machine=machine, seed=11, **params)[0]
        r4 = run_table34(4, loads=(0.83,), machine=machine, seed=11, **params)[0]
        return r3, r4

    r3, r4 = benchmark.pedantic(run_both, rounds=1, iterations=1)
    record_table(
        "table34_cross_r3_vs_r4",
        format_table34([r3]) + "\n\n" + format_table34([r4]),
    )
    assert r4.fraction_recovered < r3.fraction_recovered
