"""Benchmark: regenerate Table 6 (subtable recurrence λ'_{i,j} vs experiment).

Paper reference (r=4, k=2, n=10^6, c=0.7, 1000 trials): the subtable
recurrence of Equation (B.1) predicts the number of vertices left after each
subround to within a handful of vertices per million, all the way down to the
final subrounds where only a few hundred vertices remain.
"""

from __future__ import annotations

import pytest

from repro.experiments import format_table6, run_table6


def _parameters(scale: str):
    if scale == "paper":
        return dict(n=1_000_000, trials=1000)
    return dict(n=100_000, trials=10)


@pytest.mark.benchmark(group="table6")
def test_table6_subtable_recurrence(benchmark, record_table, scale):
    params = _parameters(scale)

    rows = benchmark.pedantic(
        lambda: run_table6(c=0.7, rounds=7, seed=19, **params), rounds=1, iterations=1
    )
    record_table("table6", format_table6(rows, c=0.7))

    # Early subrounds (counts of order n) match the recurrence to ~2%.
    for row in rows[:16]:
        assert row.relative_error < 0.02

    # The survivor sequence is non-increasing across subrounds and reaches
    # (essentially) zero by the final recorded subround, as in the paper.
    values = [row.experiment for row in rows]
    assert all(a >= b - 1e-9 for a, b in zip(values, values[1:]))
    assert values[-1] < params["n"] * 1e-3

    # The prediction for the last paper row (i=7, j=4) is essentially zero.
    last = rows[-1]
    assert last.prediction < 1.0
