"""Benchmark: regenerate Table 3 (IBLT with r=3 hash functions).

Paper reference (2^24 cells, Tesla C2070 vs serial C++): at load 0.75
(below c*_{2,3} ≈ 0.818) 100% of items are recovered and the GPU recovery is
~19× faster than serial (0.33s vs 6.37s); at load 0.83 (above the threshold)
only ~50% of items are recovered and the advantage drops to ~9× (0.42s vs
3.64s).  Insertion speedups are ~10-12× at both loads.

The reproduction prices the same round structure on the simulated parallel
machine (see DESIGN.md for the substitution); the assertions check the
*shape*: full recovery and a large speedup below the threshold, partial
recovery and a clearly smaller speedup above it, and load-insensitive
insertion speedups.
"""

from __future__ import annotations

import pytest

from repro.experiments import format_table34, run_table34
from repro.parallel import ParallelMachine


def _parameters(scale: str):
    if scale == "paper":
        return dict(num_cells=16_777_216)
    return dict(num_cells=30_000)


@pytest.mark.benchmark(group="table3")
def test_table3_iblt_r3(benchmark, record_table, scale):
    params = _parameters(scale)
    machine = ParallelMachine(num_threads=4096)

    rows = benchmark.pedantic(
        lambda: run_table34(3, loads=(0.75, 0.83), machine=machine, seed=5, **params),
        rounds=1,
        iterations=1,
    )
    record_table("table3_r3", format_table34(rows))

    below, above = rows
    # Load 0.75 < c*_{2,3}: full recovery (paper: 100%).
    assert below.fraction_recovered == pytest.approx(1.0)
    # Load 0.83 > c*_{2,3}: partial recovery (paper: 50.1%).
    assert 0.05 < above.fraction_recovered < 0.9

    # Parallel recovery wins in both regimes, but the advantage shrinks above
    # the threshold (paper: ~19x -> ~9x).
    assert below.recovery_speedup > 1.5
    assert above.recovery_speedup < below.recovery_speedup

    # More recovery rounds are needed above the threshold.
    assert above.rounds >= below.rounds

    # Insertion speedup is essentially load-independent (paper: 10-12x both).
    assert below.insert_speedup == pytest.approx(above.insert_speedup, rel=0.25)
    assert below.insert_speedup > 1.5
