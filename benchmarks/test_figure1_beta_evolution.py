"""Benchmark: regenerate Figure 1 (β_i evolution near the threshold).

Paper reference (k=2, r=4): iterating the idealized recurrence at c = 0.77
and c = 0.772 — just below c*_{2,4} ≈ 0.77228 — shows a long plateau where
β_i lingers near the critical value x* before collapsing doubly
exponentially; the plateau length scales like Θ(sqrt(1/ν)) (Theorem 5), which
is why the c = 0.772 curve (ν ≈ 0.00028) stretches several times further
than the c = 0.77 curve (ν ≈ 0.0023).
"""

from __future__ import annotations

import math

import pytest

from repro.experiments import format_figure1, run_figure1


@pytest.mark.benchmark(group="figure1")
def test_figure1_beta_evolution(benchmark, record_table, scale):
    densities = (0.77, 0.772)

    series = benchmark.pedantic(
        lambda: run_figure1(densities, k=2, r=4, max_rounds=3000), rounds=1, iterations=1
    )
    record_table("figure1", format_figure1(series, k=2, r=4))

    close = series[0.772]
    far = series[0.77]

    # Closer to the threshold => smaller nu => longer plateau and more total
    # rounds before extinction.
    assert close.nu < far.nu
    assert close.gap.plateau_rounds > far.gap.plateau_rounds
    assert close.rounds_to_extinction > far.rounds_to_extinction

    # Theorem 5 scaling: the plateau grows like sqrt(1/nu).  The ratio of the
    # two plateau lengths should be within a factor ~2 of sqrt(nu_far/nu_close).
    expected_ratio = math.sqrt(far.nu / close.nu)
    measured_ratio = close.gap.plateau_rounds / max(far.gap.plateau_rounds, 1)
    assert 0.5 * expected_ratio < measured_ratio < 2.0 * expected_ratio

    # The beta sequences are monotone non-increasing and eventually vanish.
    for s in series.values():
        beta = s.beta
        assert (beta[1:] <= beta[:-1] + 1e-12).all()
        assert beta[-1] < 1e-9


@pytest.mark.benchmark(group="figure1")
def test_figure1_theorem5_sweep(benchmark, record_table, scale):
    """Extension of Figure 1: plateau length vs nu over a geometric sweep.

    Verifies the sqrt(1/nu) law quantitatively by fitting the log-log slope
    over a decade of nu values; Theorem 5 predicts slope ≈ -1/2.
    """
    from repro.analysis import peeling_threshold
    from repro.analysis.threshold_gap import plateau_length

    c_star = peeling_threshold(2, 4)
    nus = (0.02, 0.01, 0.005, 0.0025, 0.00125)

    def sweep():
        return [plateau_length(c_star - nu, 2, 4, max_rounds=20_000) for nu in nus]

    analyses = benchmark.pedantic(sweep, rounds=1, iterations=1)
    lines = ["Theorem 5 sweep (k=2, r=4): plateau rounds vs nu"]
    for analysis in analyses:
        lines.append(
            f"  nu={analysis.nu:.5f}  plateau={analysis.plateau_rounds:4d}  "
            f"sqrt(1/nu)={analysis.predicted_scale:7.2f}"
        )

    # Log-log slope of plateau length against nu.
    xs = [math.log(a.nu) for a in analyses]
    ys = [math.log(max(a.plateau_rounds, 1)) for a in analyses]
    n = len(xs)
    mean_x, mean_y = sum(xs) / n, sum(ys) / n
    slope = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys)) / sum(
        (x - mean_x) ** 2 for x in xs
    )
    lines.append(f"  fitted log-log slope = {slope:.3f}  (Theorem 5 predicts -0.5)")
    record_table("figure1_theorem5_sweep", "\n".join(lines))

    assert -0.75 < slope < -0.30
