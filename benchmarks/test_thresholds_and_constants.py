"""Benchmark: the paper's headline constants (Section 2 and Appendix B).

Not a table of its own, but the evaluation quotes c*_{2,3} ≈ 0.818,
c*_{2,4} ≈ 0.772, c*_{3,3} ≈ 1.553 (Section 2), φ_2 ≈ 1.61 / φ_3 ≈ 1.83 /
φ_4 ≈ 1.92 and the ratio log(r−1)/log(φ_{r−1}) ≈ 1.456 for r=3
(Appendix B).  This benchmark times the threshold solver and records all the
constants next to the paper's values.
"""

from __future__ import annotations

import math

import pytest

from repro.analysis import fibonacci_growth_rate, peeling_threshold
from repro.analysis.fibonacci import subtable_round_ratio
from repro.analysis.rounds import gao_leading_constant, leading_constant_below
from repro.analysis.thresholds import threshold_minimizer

PAPER_THRESHOLDS = {(2, 3): 0.818, (2, 4): 0.772, (3, 3): 1.553}
PAPER_PHI = {2: 1.61, 3: 1.83, 4: 1.92}


@pytest.mark.benchmark(group="constants")
def test_thresholds_and_constants(benchmark, record_table, scale):
    def compute():
        threshold_minimizer.cache_clear()
        return {pair: peeling_threshold(*pair) for pair in PAPER_THRESHOLDS}

    thresholds = benchmark.pedantic(compute, rounds=3, iterations=1)

    lines = ["Headline constants: paper vs computed"]
    for (k, r), paper_value in PAPER_THRESHOLDS.items():
        computed = thresholds[(k, r)]
        lines.append(f"  c*_{{{k},{r}}}: paper {paper_value:.3f}   computed {computed:.6f}")
        assert computed == pytest.approx(paper_value, abs=1e-3)

    for order, paper_value in PAPER_PHI.items():
        computed = fibonacci_growth_rate(order)
        lines.append(f"  phi_{order}:    paper {paper_value:.2f}    computed {computed:.6f}")
        assert computed == pytest.approx(paper_value, abs=0.01)

    ratio_r3 = math.log(2) / math.log(fibonacci_growth_rate(2))
    lines.append(f"  log(r-1)/log(phi_(r-1)) for r=3: paper 1.456  computed {ratio_r3:.4f}")
    assert ratio_r3 == pytest.approx(1.44, abs=0.05)

    # Extra context recorded for the docs: Theorem 1 vs Gao's constant and
    # the Theorem 7 subround ratio for the Table 5 configuration.
    lines.append(
        f"  Theorem 1 constant (k=2,r=4): {leading_constant_below(2, 4):.4f}; "
        f"Gao's constant: {gao_leading_constant(2, 4):.4f}"
    )
    lines.append(
        f"  Theorem 7 subround ratio (k=2,r=4): {subtable_round_ratio(2, 4):.4f}"
    )
    record_table("constants", "\n".join(lines))
