"""Benchmark: regenerate Table 2 (recurrence λ_t vs. measured survivors).

Paper reference (r=4, k=2, n=10^6, 1000 trials): the idealized recurrence
predicts the number of unpeeled vertices per round to a relative error of
roughly 10^-3 both below the threshold (c=0.7, extinction at round 13) and
above it (c=0.85, convergence to ≈775,010 survivors).

The small-scale run uses n=10^5 and 10 trials; the accuracy assertions are
correspondingly looser (2% on the large early-round counts) but the shape —
extinction below, a positive plateau above — is identical.
"""

from __future__ import annotations

import pytest

from repro.experiments import format_table2, run_table2


def _parameters(scale: str):
    if scale == "paper":
        return dict(n=1_000_000, trials=1000)
    return dict(n=100_000, trials=10)


@pytest.mark.benchmark(group="table2")
def test_table2_below_threshold(benchmark, record_table, scale):
    params = _parameters(scale)

    rows = benchmark.pedantic(
        lambda: run_table2(c=0.7, rounds=16, seed=2, **params), rounds=1, iterations=1
    )
    record_table("table2_c0.70", format_table2(rows, c=0.7))

    # Early rounds (counts in the hundreds of thousands) match to ~2%.
    for row in rows[:9]:
        assert row.relative_error < 0.02
    # Extinction: by round 14-16 essentially nothing is left, exactly as the
    # recurrence predicts.
    assert rows[-1].experiment < params["n"] * 1e-3
    assert rows[-1].prediction < params["n"] * 1e-3


@pytest.mark.benchmark(group="table2")
def test_table2_above_threshold(benchmark, record_table, scale):
    params = _parameters(scale)

    rows = benchmark.pedantic(
        lambda: run_table2(c=0.85, rounds=20, seed=3, **params), rounds=1, iterations=1
    )
    record_table("table2_c0.85", format_table2(rows, c=0.85))

    for row in rows:
        assert row.relative_error < 0.02
    # Above the threshold the process stalls at a positive fraction
    # (paper: 775,010 of 10^6 ≈ 77.5%).
    final_fraction = rows[-1].experiment / params["n"]
    assert 0.70 < final_fraction < 0.85
