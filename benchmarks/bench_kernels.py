#!/usr/bin/env python
"""Kernel-backend benchmark harness (stand-alone wrapper).

Times ``peel`` / ``peel_many`` / IBLT decode across every peeling engine and
registered kernel backend and writes ``BENCH_kernels.json``, seeding the
repo's perf trajectory.  The timing logic lives in :mod:`repro.bench`; this
wrapper exists so the harness can be launched from a checkout next to the
pytest-benchmark tables:

    PYTHONPATH=src python benchmarks/bench_kernels.py [--quick] [--sizes ...]

The same harness is reachable as ``repro bench`` once the package is
installed.
"""

from __future__ import annotations

import sys
from pathlib import Path

# Allow running from a checkout without installation.
_SRC = Path(__file__).resolve().parent.parent / "src"
if _SRC.is_dir() and str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.bench import main  # noqa: E402

if __name__ == "__main__":
    sys.exit(main())
