"""Benchmark: regenerate Table 1 (failures and rounds of parallel peeling).

Paper reference (r=4, k=2, 1000 trials): below the threshold the average
round count is essentially flat in n (12.5 → 13.0 at c=0.7; ~23.4 at
c=0.75), and every trial succeeds; above the threshold every trial fails and
the round count climbs roughly linearly in log n (10.8 → 19.6 at c=0.85).

The small-scale defaults keep the same densities and reproduce the same
shape: zero failures and flat rounds below threshold, all failures and
growing rounds above.
"""

from __future__ import annotations

import pytest

from repro.analysis import peeling_threshold
from repro.experiments import PAPER_SIZES, format_table1, run_table1


def _parameters(scale: str):
    if scale == "paper":
        return dict(sizes=PAPER_SIZES, densities=(0.7, 0.75, 0.8, 0.85), trials=1000)
    return dict(sizes=(10_000, 20_000, 40_000, 80_000), densities=(0.7, 0.75, 0.8, 0.85), trials=10)


@pytest.mark.benchmark(group="table1")
def test_table1_rounds_vs_n(benchmark, record_table, scale):
    params = _parameters(scale)

    rows = benchmark.pedantic(
        lambda: run_table1(seed=1, **params), rounds=1, iterations=1
    )
    record_table("table1", format_table1(rows))

    c_star = peeling_threshold(2, 4)
    by_density = {}
    for row in rows:
        by_density.setdefault(row.c, []).append(row)

    for c, cells in by_density.items():
        cells.sort(key=lambda row: row.n)
        if c < c_star:
            # Below threshold: all trials succeed, rounds ~ log log n (flat).
            assert all(cell.failed == 0 for cell in cells)
            assert cells[-1].avg_rounds - cells[0].avg_rounds <= 2.5
        else:
            # Above threshold: all trials fail, rounds grow with n.
            assert all(cell.failed == cell.trials for cell in cells)
            assert cells[-1].avg_rounds > cells[0].avg_rounds

    # The paper's asymmetry: at the largest n, c=0.85 (above) needs more
    # rounds than c=0.7 (below) even though it is "closer" to done per round.
    largest = max(row.n for row in rows)
    below = next(r for r in rows if r.n == largest and r.c == 0.7)
    above = next(r for r in rows if r.n == largest and r.c == 0.85)
    assert above.avg_rounds > below.avg_rounds
