"""Shared helpers for the benchmark harness.

Every benchmark regenerates one table or figure of the paper.  Besides the
pytest-benchmark timing, each benchmark writes the formatted table (the same
rows the paper reports) to ``benchmarks/results/<name>.txt`` so the
paper-vs-measured comparison in EXPERIMENTS.md can be refreshed from a single
``pytest benchmarks/ --benchmark-only`` run.

Benchmark scale knobs: the environment variable ``REPRO_BENCH_SCALE`` selects
``small`` (default; seconds per table) or ``paper`` (the paper's full n and
trial counts; hours).
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


def bench_scale() -> str:
    """Return the configured benchmark scale ('small' or 'paper')."""
    scale = os.environ.get("REPRO_BENCH_SCALE", "small").lower()
    if scale not in ("small", "paper"):
        raise ValueError(f"REPRO_BENCH_SCALE must be 'small' or 'paper', got {scale!r}")
    return scale


@pytest.fixture(scope="session")
def results_dir() -> Path:
    """Directory where formatted tables are written."""
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    return RESULTS_DIR


@pytest.fixture(scope="session")
def scale() -> str:
    """Benchmark scale fixture ('small' or 'paper')."""
    return bench_scale()


@pytest.fixture(scope="session")
def record_table(results_dir):
    """Callable fixture: persist a formatted table and echo it to stdout."""

    def _record(name: str, text: str) -> None:
        path = results_dir / f"{name}.txt"
        path.write_text(text + "\n", encoding="utf-8")
        print(f"\n{text}\n[written to {path}]")

    return _record
